package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"path"
	"strings"
)

// GuardDiscipline enforces the guarded-serving contract: outside
// internal/guard and internal/predictor themselves, nothing calls the
// predictor's SelectPlan / SelectPlanParallel / SelectPlanKeyed /
// SelectPlanGroups directly.
// Every serving-path
// score must flow through guard.Guard — Serve for guarded serving, or
// ScoreLearned where raw model failures must surface (validation) — so the
// deadline watchdog, circuit breaker and regression sentinel cannot be
// bypassed by a new call site. Test files are exempt (eachSourceFile skips
// them): tests and benchmarks probe the raw model on purpose.
//
// The same analyzer polices the model lifecycle seam: Guard.SwapScorer
// replaces the serving model mid-flight, and calling it anywhere but the
// lifecycle manager (a file named lifecycle.go) desynchronizes the guard's
// scorer from the deployment's predictor pointer — the swap must pair both
// writes, reset the sentinel, and account the quarantine release.
//
// With type information available, the analyzer also flags method *values*:
// `f := p.SelectPlanKeyed` smuggles the raw entry point past the call-site
// scan and hands it to code that may invoke it anywhere — the exact false
// negative the syntactic matcher had.
func GuardDiscipline() *Analyzer {
	return &Analyzer{
		Name: "guarddiscipline",
		Doc:  "predictor plan scoring outside internal/guard flows through guard.Guard",
		Run:  runGuardDiscipline,
	}
}

// guardExemptSuffixes are the package-path tails allowed to touch the raw
// scoring entry points: the guard (it owns the call) and the predictor (it
// implements it). Suffix matching keeps fixture programs, which load under
// their own module path, subject to the same rule.
var guardExemptSuffixes = []string{"/internal/guard", "/internal/predictor"}

func runGuardDiscipline(prog *Program) []Finding {
	var out []Finding
	prog.eachSourceFile(func(pkg *Package, f *File) {
		if strings.HasSuffix(pkg.ImportPath, "/internal/fleet") {
			out = append(out, guardFleetAdmission(prog, f)...)
		}
		if guardExempt(pkg.ImportPath) {
			return
		}
		// Selector expressions in call position, so the method-value pass
		// below doesn't double-report every direct call.
		callFuns := map[*ast.SelectorExpr]bool{}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					callFuns[sel] = true
				}
			}
			return true
		})
		out = append(out, guardMethodValues(prog, pkg, f, callFuns)...)
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			switch name {
			case "SelectPlan", "SelectPlanParallel", "SelectPlanKeyed", "SelectPlanGroups":
				out = append(out, Finding{
					Pos:  prog.Fset.Position(call.Pos()),
					Rule: "guarddiscipline",
					Message: fmt.Sprintf("%s.%s bypasses the serving guard: deadline, circuit breaker and quarantine do not apply here",
						exprString(sel.X), name),
					Suggestion: "route through guard.Guard — Serve for guarded serving, ScoreLearned where raw model errors must surface",
				})
			case "SwapScorer":
				if path.Base(f.Path) == "lifecycle.go" {
					return true
				}
				out = append(out, Finding{
					Pos:  prog.Fset.Position(call.Pos()),
					Rule: "guarddiscipline",
					Message: fmt.Sprintf("%s.SwapScorer outside the lifecycle seam: the guard scorer and the deployment's predictor pointer must swap together",
						exprString(sel.X)),
					Suggestion: "swap models through the lifecycle manager (lifecycle.go promote/rollback), which pairs the predictor store with the scorer swap",
				})
			}
			return true
		})
	})
	return out
}

// fleetGateFunc is the one function inside internal/fleet sanctioned to reach
// a backend's full serving ladder: the registry's exit from the admission
// gate.
const fleetGateFunc = "serveAdmitted"

// guardFleetAdmission enforces the fleet admission gate: inside
// internal/fleet, a backend's OptimizeCtx (or a no-context Optimize) is
// reachable only from Registry.serveAdmitted. Any other call site — or a
// method value that could smuggle the entry point out — bypasses the token
// buckets, priority lanes and shed accounting entirely. Purely syntactic: the
// rule is scoped to one package where every selector by that name IS the
// serving ladder, so no type resolution is needed and fixture packages load
// under the same discipline.
func guardFleetAdmission(prog *Program, f *File) []Finding {
	var out []Finding
	for _, decl := range f.AST.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		inGate := fd.Name.Name == fleetGateFunc
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if name != "OptimizeCtx" && name != "Optimize" {
				return true
			}
			if inGate && name == "OptimizeCtx" {
				return true
			}
			out = append(out, Finding{
				Pos:  prog.Fset.Position(sel.Pos()),
				Rule: "guarddiscipline",
				Message: fmt.Sprintf("%s.%s inside internal/fleet bypasses the admission gate: token buckets, priority lanes and shed accounting do not apply here",
					exprString(sel.X), name),
				Suggestion: "route backend serving through Registry.serveAdmitted, the one sanctioned exit from the admission gate",
			})
			return true
		})
	}
	return out
}

// guardExempt reports whether a package owns the raw scoring entry points.
func guardExempt(importPath string) bool {
	for _, s := range guardExemptSuffixes {
		if strings.HasSuffix(importPath, s) {
			return true
		}
	}
	return false
}

// guardMethodValues flags references to the raw scoring entry points taken
// as method values (not in call position). Typed-only: without resolution a
// bare selector cannot be distinguished from an unrelated field access.
func guardMethodValues(prog *Program, pkg *Package, f *File, callFuns map[*ast.SelectorExpr]bool) []Finding {
	ti := prog.Typed(pkg)
	if ti == nil {
		return nil
	}
	var out []Finding
	ast.Inspect(f.AST, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || callFuns[sel] {
			return true
		}
		fn, ok := ti.Info.Uses[sel.Sel].(*types.Func)
		if !ok || recvNamed(fn) == nil {
			return true
		}
		switch fn.Name() {
		case "SelectPlan", "SelectPlanParallel", "SelectPlanKeyed", "SelectPlanGroups":
			out = append(out, Finding{
				Pos:  prog.Fset.Position(sel.Pos()),
				Rule: "guarddiscipline",
				Message: fmt.Sprintf("method value %s.%s smuggles the raw scoring entry point past the serving guard",
					exprString(sel.X), fn.Name()),
				Suggestion: "pass the guard (or a closure over guard.Serve/ScoreLearned) instead of the raw method",
			})
		case "SwapScorer":
			if path.Base(f.Path) == "lifecycle.go" {
				return true
			}
			out = append(out, Finding{
				Pos:  prog.Fset.Position(sel.Pos()),
				Rule: "guarddiscipline",
				Message: fmt.Sprintf("method value %s.SwapScorer escapes the lifecycle seam: the swap must stay paired with the predictor store",
					exprString(sel.X)),
				Suggestion: "keep SwapScorer invocations inside lifecycle.go's promote/rollback",
			})
		}
		return true
	})
	return out
}
