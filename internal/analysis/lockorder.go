package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds the program-wide lock-acquisition graph over sync.Mutex /
// sync.RWMutex struct fields (guard, cluster, lifecycle, telemetry,
// feedback, ...) and enforces two contracts:
//
//  1. No cycles. An edge A → B means some function acquires B (directly, or
//     via a callee) while holding A. A cycle is a latent deadlock the moment
//     two goroutines take the locks in opposite orders.
//  2. No hook calls under a lock. Invoking a func-typed struct field (a
//     registered callback, e.g. a SetDriftHook target) or a func-typed
//     parameter while holding any lock hands control to arbitrary code that
//     may call back into the locked component — the classic re-entrant
//     deadlock seam. getOrCompute-style code must release before invoking.
//
// Lock identity is the (owning named type, field name) pair, so g.mu and
// other.guard.mu are the same lock for ordering purposes. Held-set tracking
// is a linear in-source-order scan per function: Lock/RLock adds, Unlock/
// RUnlock removes, defer Unlock holds to function end. Function literals are
// scanned as their own contexts (their bodies run later, not under the
// current held set). Acquisition summaries propagate over static call edges
// only — the name fallback would invent lock edges out of coincidental
// method names.
//
// Typed-only: packages without type information contribute nothing (the
// syntactic load cannot identify mutex fields), so fixture programs opt in
// simply by type-checking.
func LockOrder() *Analyzer {
	return &Analyzer{
		Name: "lockorder",
		Doc:  "lock-acquisition graph is acyclic and hooks are never invoked under a lock",
		Run:  runLockOrder,
	}
}

// lockEdge is one observed acquisition order: to was acquired while from was
// held, at pos (via names the callee chain when indirect).
type lockEdge struct {
	from, to lockID
	pos      token.Pos
	via      string
}

func runLockOrder(prog *Program) []Finding {
	cg := prog.BuildCallGraph()

	// Pass 1: per-function direct scans — acquisitions, hook-under-lock
	// findings, and calls made under a held set.
	acquires := map[*FuncNode]map[lockID]token.Pos{} // locks a function takes directly
	type heldCall struct {
		held map[lockID]token.Pos
		site *CallSite
	}
	heldCalls := map[*FuncNode][]heldCall{}
	var edges []lockEdge
	var out []Finding

	for _, node := range cg.Nodes {
		ti := prog.Typed(node.Pkg)
		if ti == nil {
			continue
		}
		sc := &lockScan{prog: prog, info: ti.Info, node: node,
			acquired: map[lockID]token.Pos{}}
		sc.scan(node.Decl.Body, map[lockID]token.Pos{})
		acquires[node] = sc.acquired
		for _, hc := range sc.calls {
			heldCalls[node] = append(heldCalls[node], heldCall{held: hc.held, site: hc.site})
		}
		edges = append(edges, sc.edges...)
		out = append(out, sc.findings...)
	}

	// Pass 2: transitive acquisition summaries over static edges.
	summary := map[*FuncNode]map[lockID]bool{}
	var summarize func(n *FuncNode, stack map[*FuncNode]bool) map[lockID]bool
	summarize = func(n *FuncNode, stack map[*FuncNode]bool) map[lockID]bool {
		if s, ok := summary[n]; ok {
			return s
		}
		if stack[n] {
			return nil // recursion: the cycle's locks surface via other paths
		}
		stack[n] = true
		defer delete(stack, n)
		s := map[lockID]bool{}
		for l := range acquires[n] {
			s[l] = true
		}
		for _, site := range n.Calls {
			if !site.Static {
				continue
			}
			for _, t := range site.Targets {
				for l := range summarize(t, stack) {
					s[l] = true
				}
			}
		}
		summary[n] = s
		return s
	}
	for _, n := range cg.Nodes {
		summarize(n, map[*FuncNode]bool{})
	}

	// Pass 3: indirect edges — a static call made under a held set reaches
	// every lock in the callee's summary.
	for _, n := range cg.Nodes {
		for _, hc := range heldCalls[n] {
			if !hc.site.Static {
				continue
			}
			for _, t := range hc.site.Targets {
				for _, to := range sortedLocks(summary[t]) {
					for _, from := range sortedLocks(hc.held) {
						if from != to {
							edges = append(edges, lockEdge{from: from, to: to, pos: hc.held[from], via: t.Name()})
						}
					}
				}
			}
		}
	}

	out = append(out, lockCycles(prog, edges)...)
	return out
}

// sortedLocks returns a map's lock keys in name order — every iteration over
// a held set or summary goes through this, keeping findings deterministic.
func sortedLocks[V any](m map[lockID]V) []lockID {
	out := make([]lockID, 0, len(m))
	for l := range m {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// lockCycles detects cycles in the acquisition graph and reports each once,
// at the lexically first edge position on the cycle.
func lockCycles(prog *Program, edges []lockEdge) []Finding {
	succ := map[lockID]map[lockID]lockEdge{}
	var nodes []lockID
	seenNode := map[lockID]bool{}
	addNode := func(l lockID) {
		if !seenNode[l] {
			seenNode[l] = true
			nodes = append(nodes, l)
		}
	}
	for _, e := range edges {
		addNode(e.from)
		addNode(e.to)
		if succ[e.from] == nil {
			succ[e.from] = map[lockID]lockEdge{}
		}
		if old, ok := succ[e.from][e.to]; !ok || e.pos < old.pos {
			succ[e.from][e.to] = e
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].String() < nodes[j].String() })

	var out []Finding
	reported := map[string]bool{}
	// DFS from each node in name order; a back edge closes a cycle.
	var stack []lockID
	onStack := map[lockID]bool{}
	done := map[lockID]bool{}
	var visit func(l lockID)
	visit = func(l lockID) {
		stack = append(stack, l)
		onStack[l] = true
		next := make([]lockID, 0, len(succ[l]))
		for to := range succ[l] {
			next = append(next, to)
		}
		sort.Slice(next, func(i, j int) bool { return next[i].String() < next[j].String() })
		for _, to := range next {
			if onStack[to] {
				out = append(out, cycleFinding(prog, stack, to, succ, reported)...)
				continue
			}
			if !done[to] {
				visit(to)
			}
		}
		onStack[l] = false
		done[l] = true
		stack = stack[:len(stack)-1]
	}
	for _, l := range nodes {
		if !done[l] {
			visit(l)
		}
	}
	return out
}

// cycleFinding renders the cycle closing at `to` on the current DFS stack.
func cycleFinding(prog *Program, stack []lockID, to lockID, succ map[lockID]map[lockID]lockEdge, reported map[string]bool) []Finding {
	i := 0
	for ; i < len(stack); i++ {
		if stack[i] == to {
			break
		}
	}
	cycle := append(append([]lockID{}, stack[i:]...), to)
	// Canonical key: rotate so the lexically smallest lock leads.
	names := make([]string, len(cycle)-1)
	for j := 0; j < len(cycle)-1; j++ {
		names[j] = cycle[j].String()
	}
	min := 0
	for j, n := range names {
		if n < names[min] {
			min = j
		}
	}
	canon := append(append([]string{}, names[min:]...), names[:min]...)
	key := strings.Join(canon, "->")
	if reported[key] {
		return nil
	}
	reported[key] = true

	// Report at the earliest edge position on the cycle.
	pos := token.Pos(0)
	for j := 0; j < len(cycle)-1; j++ {
		e := succ[cycle[j]][cycle[j+1]]
		if pos == 0 || e.pos < pos {
			pos = e.pos
		}
	}
	return []Finding{{
		Pos:  prog.Fset.Position(pos),
		Rule: "lockorder",
		Message: fmt.Sprintf("lock-order cycle: %s -> %s",
			strings.Join(canon, " -> "), canon[0]),
		Suggestion: "impose a single acquisition order (document it on the outermost type) or release before calling across components",
	}}
}

// lockScan walks one function body in source order tracking the held set.
type lockScan struct {
	prog *Program
	info *types.Info
	node *FuncNode

	acquired map[lockID]token.Pos // every lock this function takes directly
	edges    []lockEdge           // direct nested acquisitions
	findings []Finding            // hook-under-lock violations
	calls    []struct {
		held map[lockID]token.Pos
		site *CallSite
	}
	siteIdx int // cursor into node.Calls (populated in the same source order)
}

// scan processes a statement block under the given held set. The held map is
// mutated in place: Go's block structure doesn't scope lock lifetimes, so a
// linear source-order approximation is the honest model.
func (s *lockScan) scan(body ast.Node, held map[lockID]token.Pos) {
	deferred := map[lockID]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			// Literal bodies run later under their own lock context; any
			// call sites inside still occupy slots in node.Calls, so recurse
			// with a fresh held set to keep the cursor aligned.
			s.scan(v.Body, map[lockID]token.Pos{})
			return false
		case *ast.DeferStmt:
			if id, kind, ok := s.lockCall(v.Call); ok && strings.Contains(kind, "Unlock") {
				deferred[id] = true
				s.consumeSite(v.Call)
				return false
			}
			return true
		case *ast.CallExpr:
			if id, kind, ok := s.lockCall(v); ok {
				switch kind {
				case "Lock", "RLock":
					for _, from := range sortedLocks(held) {
						if from != id {
							s.edges = append(s.edges, lockEdge{from: from, to: id, pos: v.Pos()})
						}
					}
					held[id] = v.Pos()
					if _, ok := s.acquired[id]; !ok {
						s.acquired[id] = v.Pos()
					}
				case "Unlock", "RUnlock":
					if !deferred[id] {
						delete(held, id)
					}
				}
				s.consumeSite(v)
				return false
			}
			site := s.consumeSite(v)
			if len(held) > 0 {
				heldCopy := map[lockID]token.Pos{}
				for k, p := range held {
					heldCopy[k] = p
				}
				s.calls = append(s.calls, struct {
					held map[lockID]token.Pos
					site *CallSite
				}{held: heldCopy, site: site})
				s.hookCheck(v, site, heldCopy)
			}
		}
		return true
	})
}

// consumeSite advances the call-site cursor to the entry for this call
// expression. resolveBody visits calls in the same pre-order, so the cursor
// normally lands exactly; position matching keeps it honest.
func (s *lockScan) consumeSite(call *ast.CallExpr) *CallSite {
	for i := s.siteIdx; i < len(s.node.Calls); i++ {
		if s.node.Calls[i].Call == call {
			s.siteIdx = i + 1
			return s.node.Calls[i]
		}
	}
	return nil
}

// lockCall recognizes x.mu.Lock()/Unlock()/RLock()/RUnlock() on a mutex
// field and returns the lock identity plus the method name.
func (s *lockScan) lockCall(call *ast.CallExpr) (lockID, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockID{}, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return lockID{}, "", false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return lockID{}, "", false
	}
	id, ok := lockFieldOf(s.info, inner)
	if !ok {
		return lockID{}, "", false
	}
	return id, sel.Sel.Name, true
}

// hookCheck flags calls through func-typed struct fields or func-typed
// parameters while any lock is held.
func (s *lockScan) hookCheck(call *ast.CallExpr, site *CallSite, held map[lockID]token.Pos) {
	if site == nil {
		return
	}
	var kind, name string
	switch {
	case site.HookField != nil:
		kind, name = "hook field", site.HookField.Name()
	case site.FuncValue != nil && isParamOf(s.node, site.FuncValue):
		kind, name = "callback parameter", site.FuncValue.Name()
	default:
		return
	}
	if _, isFunc := site.HookFieldType(); site.HookField != nil && !isFunc {
		return
	}
	locks := make([]string, 0, len(held))
	for l := range held {
		locks = append(locks, l.String())
	}
	sort.Strings(locks)
	s.findings = append(s.findings, Finding{
		Pos:  s.prog.Fset.Position(call.Pos()),
		Rule: "lockorder",
		Message: fmt.Sprintf("%s %q invoked while holding %s (in %s)",
			kind, name, strings.Join(locks, ", "), s.node.Name()),
		Suggestion: "copy the hook under the lock, release, then invoke (see guard.observeLearned)",
	})
}

// HookFieldType reports whether the hook field is func-typed.
func (c *CallSite) HookFieldType() (*types.Signature, bool) {
	if c.HookField == nil {
		return nil, false
	}
	sig, ok := c.HookField.Type().Underlying().(*types.Signature)
	return sig, ok
}

// isParamOf reports whether v is a parameter of the node's declaration.
func isParamOf(node *FuncNode, v *types.Var) bool {
	if node.Obj == nil {
		return false
	}
	sig, ok := node.Obj.Type().(*types.Signature)
	if !ok || sig.Params() == nil {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == v {
			return true
		}
	}
	return false
}
