package analysis

import "testing"

// TestCtxFlowFreshRoots: context.Background()/TODO() fire in library code and
// stay silent in package main and the walltime boundary.
func TestCtxFlowFreshRoots(t *testing.T) {
	prog := fixture(t, map[string]string{
		"internal/p/p.go": `package p

import "context"

func Go() context.Context {
	return context.Background()
}

func Later() context.Context {
	return context.TODO()
}
`,
		"cmd/tool/main.go": `package main

import "context"

func main() {
	_ = context.Background()
}
`,
		"internal/walltime/w.go": `package walltime

import "context"

func Root() context.Context {
	return context.Background()
}
`,
	})
	got := runOne(prog, CtxFlow())
	wantFindings(t, got, [][2]string{
		{"ctxflow", "context.Background creates a fresh root context in library code (in Go)"},
		{"ctxflow", "context.TODO creates a fresh root context in library code (in Later)"},
	})
}

// TestCtxFlowDroppedContext: a function holding a ctx parameter must thread
// it (or a derived context) into every ctx-aware callee.
func TestCtxFlowDroppedContext(t *testing.T) {
	prog := fixture(t, map[string]string{"internal/p/p.go": `package p

import "context"

var base = context.Background()

func inner(ctx context.Context) error { return nil }

func Drops(ctx context.Context) error {
	return inner(base)
}

func Threads(ctx context.Context) error {
	return inner(ctx)
}

func Derives(ctx context.Context) error {
	c2, cancel := context.WithCancel(ctx)
	defer cancel()
	return inner(c2)
}
`})
	got := runOne(prog, CtxFlow())
	wantFindings(t, got, [][2]string{
		{"ctxflow", `inner receives a context not derived from "ctx": the caller's deadline is dropped (in Drops)`},
	})
}

// TestCtxFlowBlankParamExempt: discarding the context by naming it "_" is an
// explicit choice; the threading rule does not apply.
func TestCtxFlowBlankParamExempt(t *testing.T) {
	prog := fixture(t, map[string]string{"internal/p/p.go": `package p

import "context"

var base = context.Background()

func inner(ctx context.Context) error { return nil }

func Ignores(_ context.Context) error {
	return inner(base)
}
`})
	if got := runOne(prog, CtxFlow()); len(got) != 0 {
		t.Fatalf("blank ctx param fired %d finding(s):\n%s", len(got), renderFindings(got))
	}
}
