package analysis

import (
	"strings"
	"testing"
)

// fixture assembles an in-memory program under module path "fixture".
func fixture(t *testing.T, files map[string]string) *Program {
	t.Helper()
	prog, err := NewProgram("fixture", files)
	if err != nil {
		t.Fatalf("NewProgram: %v", err)
	}
	return prog
}

// runOne runs a single analyzer with no allowlist.
func runOne(prog *Program, a *Analyzer) []Finding {
	return RunAll(prog, []*Analyzer{a}, nil)
}

// wantFindings asserts each expected (rule, message-substring) pair appears
// exactly once and nothing else fires.
func wantFindings(t *testing.T, got []Finding, want [][2]string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%s", len(got), len(want), renderFindings(got))
	}
	for i, w := range want {
		if got[i].Rule != w[0] || !strings.Contains(got[i].Message, w[1]) {
			t.Errorf("finding %d = %s, want rule %q message containing %q", i, got[i], w[0], w[1])
		}
	}
}

func renderFindings(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString("  " + f.String() + "\n")
	}
	return b.String()
}

func TestDeterminism(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want [][2]string
	}{
		{
			name: "math/rand import is flagged",
			src: `package p
import "math/rand"
func Roll() int { return rand.Intn(6) }
`,
			want: [][2]string{{"determinism", "math/rand"}},
		},
		{
			name: "math/rand/v2 import is flagged",
			src: `package p
import "math/rand/v2"
func Roll() int { return rand.IntN(6) }
`,
			want: [][2]string{{"determinism", "math/rand/v2"}},
		},
		{
			name: "time.Now and time.Since are flagged",
			src: `package p
import "time"
func Elapsed() float64 {
	start := time.Now()
	return time.Since(start).Seconds()
}
`,
			want: [][2]string{
				{"determinism", "time.Now"},
				{"determinism", "time.Since"},
			},
		},
		{
			name: "map range appending to outer slice without sort is flagged",
			src: `package p
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`,
			want: [][2]string{{"determinism", `range over map "m"`}},
		},
		{
			name: "map range append rescued by a later sort is clean",
			src: `package p
import "sort"
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
`,
		},
		{
			name: "map range float accumulation is flagged, x++ counting is not",
			src: `package p
func Sum(m map[string]float64) (float64, int) {
	total, n := 0.0, 0
	for _, v := range m {
		total += v
		n++
	}
	return total, n
}
`,
			want: [][2]string{{"determinism", `accumulation into outer "total"`}},
		},
		{
			name: "map range printing is flagged",
			src: `package p
import "fmt"
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
`,
			want: [][2]string{{"determinism", "fmt.Println"}},
		},
		{
			name: "map range calling a method on shared state is flagged",
			src: `package p
type Sink struct{ xs []string }
func (s *Sink) Add(x string) { s.xs = append(s.xs, x) }
func Drain(m map[string]int, s *Sink) {
	for k := range m {
		s.Add(k)
	}
}
`,
			want: [][2]string{{"determinism", "call s.Add on shared state"}},
		},
		{
			name: "order-insensitive map range is clean",
			src: `package p
func Has(m map[string]int, want string) bool {
	found := false
	for k := range m {
		if k == want {
			found = true
		}
	}
	return found
}
`,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			prog := fixture(t, map[string]string{"internal/p/p.go": tc.src})
			wantFindings(t, runOne(prog, Determinism()), tc.want)
		})
	}
}

func TestDeterminismSkipsTestFiles(t *testing.T) {
	prog := fixture(t, map[string]string{
		"internal/p/p_test.go": `package p
import "time"
func now() float64 { return float64(time.Now().Unix()) }
`,
	})
	wantFindings(t, runOne(prog, Determinism()), nil)
}

// lockFixture is a miniature of the real guarded packages: the import-path
// suffix and package name make the guardSpec for cluster.Cluster apply.
const lockClusterSrc = `package cluster
import "sync"
type Cluster struct {
	mu       sync.RWMutex
	machines []int
}
func (c *Cluster) Bad() int { return len(c.machines) }
func (c *Cluster) Good() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.machines)
}
func (c *Cluster) sumLocked() int {
	n := 0
	for range c.machines {
		n++
	}
	return n
}
func (c *Cluster) Size() int { return 4 }
`

func TestLockDiscipline(t *testing.T) {
	t.Run("in-package method without lock or Locked suffix is flagged", func(t *testing.T) {
		prog := fixture(t, map[string]string{"internal/cluster/cluster.go": lockClusterSrc})
		wantFindings(t, runOne(prog, LockDiscipline()), [][2]string{
			{"lockdiscipline", `method Cluster.Bad touches guarded field "machines"`},
		})
	})
	t.Run("out-of-package field access is flagged, method calls are not", func(t *testing.T) {
		prog := fixture(t, map[string]string{
			"internal/cluster/cluster.go": lockClusterSrc,
			"internal/other/other.go": `package other
import "fixture/internal/cluster"
func Peek(c *cluster.Cluster) int { return c.Size() }
`,
			"internal/other/bad.go": `package other
import "fixture/internal/cluster"
func Reach(c *cluster.Cluster) bool { return c.machines != nil }
`,
		})
		wantFindings(t, runOne(prog, LockDiscipline()), [][2]string{
			{"lockdiscipline", `method Cluster.Bad touches guarded field "machines"`},
			{"lockdiscipline", "direct access to mutex-guarded cluster.Cluster.machines"},
		})
	})
}

func TestNaNSafety(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want [][2]string
	}{
		{
			name: "raw cost comparison is flagged",
			src: `package p
func Best(costs []float64) int {
	bestIdx, bestCost := 0, costs[0]
	for i, cost := range costs {
		if cost < bestCost {
			bestIdx, bestCost = i, cost
		}
	}
	return bestIdx
}
`,
			want: [][2]string{{"nansafety", `raw < comparison on cost/estimate value "cost"`}},
		},
		{
			name: "IsNaN-guarded argmin is vetted",
			src: `package p
import "math"
func Best(costs []float64) int {
	bestIdx, bestCost := -1, 0.0
	for i, cost := range costs {
		if math.IsNaN(cost) {
			continue
		}
		if bestIdx < 0 || cost < bestCost {
			bestIdx, bestCost = i, cost
		}
	}
	return bestIdx
}
`,
		},
		{
			name: "comparison against a literal threshold is exempt",
			src: `package p
func Expensive(cost float64) bool { return cost > 1e9 }
`,
		},
		{
			name: "math.Min on a cost value is flagged",
			src: `package p
import "math"
func Cap(cost, limit float64) float64 { return math.Min(cost, limit) }
`,
			want: [][2]string{{"nansafety", `math.Min on cost/estimate value "cost"`}},
		},
		{
			name: "estRows-style names count as cost-like",
			src: `package p
func Smaller(estRows map[string]float64, a, b string) bool {
	return estRows[a] < estRows[b]
}
`,
			want: [][2]string{{"nansafety", "raw < comparison"}},
		},
		{
			name: "non-cost comparisons are ignored",
			src: `package p
func Longer(a, b string) bool { return len(a) > len(b) }
`,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			prog := fixture(t, map[string]string{"internal/p/p.go": tc.src})
			wantFindings(t, runOne(prog, NaNSafety()), tc.want)
		})
	}
}

func TestErrWrap(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want [][2]string
	}{
		{
			name: "Errorf embedding an error without %w is flagged",
			src: `package p
import "fmt"
func Open(path string) error {
	err := load(path)
	if err != nil {
		return fmt.Errorf("open %s: %v", path, err)
	}
	return nil
}
func load(string) error { return nil }
`,
			want: [][2]string{{"errwrap", "without %w"}},
		},
		{
			name: "Errorf with %w is clean",
			src: `package p
import "fmt"
func Open(path string) error {
	err := load(path)
	if err != nil {
		return fmt.Errorf("open %s: %w", path, err)
	}
	return nil
}
func load(string) error { return nil }
`,
		},
		{
			name: "re-applying the callee's prefix is flagged",
			src: `package p
import (
	"errors"
	"fmt"
)
var errBoom = errors.New("boom")
func deployOne(name string) error {
	return fmt.Errorf("deploy %s: %w", name, errBoom)
}
func deployAll(name string) error {
	err := deployOne(name)
	return fmt.Errorf("deploy %s: %w", name, err)
}
`,
			want: [][2]string{{"errwrap", `re-prefixes "deploy"`}},
		},
		{
			name: "wrapping with a fresh prefix is clean",
			src: `package p
import (
	"errors"
	"fmt"
)
var errBoom = errors.New("boom")
func deployOne(name string) error {
	return fmt.Errorf("deploy %s: %w", name, errBoom)
}
func rollout(name string) error {
	err := deployOne(name)
	return fmt.Errorf("rollout %s: %w", name, err)
}
`,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			prog := fixture(t, map[string]string{"internal/p/p.go": tc.src})
			wantFindings(t, runOne(prog, ErrWrap()), tc.want)
		})
	}
}

func TestGuardDiscipline(t *testing.T) {
	predictorSrc := `package predictor
type Predictor struct{}
func (p *Predictor) SelectPlan(cands []int, envs int) (int, []float64, error) { return 0, nil, nil }
func (p *Predictor) SelectPlanParallel(cands []int, envs, workers int) (int, []float64, error) { return 0, nil, nil }
`
	t.Run("raw SelectPlan outside the guard is flagged", func(t *testing.T) {
		prog := fixture(t, map[string]string{
			"internal/predictor/predictor.go": predictorSrc,
			"serve.go": `package root
import "fixture/internal/predictor"
func Serve(p *predictor.Predictor) { p.SelectPlan(nil, 0) }
func ServePar(p *predictor.Predictor) { p.SelectPlanParallel(nil, 0, 4) }
`,
		})
		wantFindings(t, runOne(prog, GuardDiscipline()), [][2]string{
			{"guarddiscipline", "p.SelectPlan bypasses the serving guard"},
			{"guarddiscipline", "p.SelectPlanParallel bypasses the serving guard"},
		})
	})
	t.Run("the guard and predictor packages are exempt", func(t *testing.T) {
		prog := fixture(t, map[string]string{
			"internal/predictor/predictor.go": predictorSrc,
			"internal/predictor/inner.go": `package predictor
func (p *Predictor) score() { p.SelectPlan(nil, 0) }
`,
			"internal/guard/guard.go": `package guard
import "fixture/internal/predictor"
func Serve(p *predictor.Predictor) { p.SelectPlan(nil, 0) }
`,
		})
		wantFindings(t, runOne(prog, GuardDiscipline()), nil)
	})
	t.Run("test files are exempt", func(t *testing.T) {
		prog := fixture(t, map[string]string{
			"internal/predictor/predictor.go": predictorSrc,
			"bench_test.go": `package root
import "fixture/internal/predictor"
func probe(p *predictor.Predictor) { p.SelectPlan(nil, 0) }
`,
		})
		wantFindings(t, runOne(prog, GuardDiscipline()), nil)
	})
	t.Run("unrelated selectors do not fire", func(t *testing.T) {
		prog := fixture(t, map[string]string{
			"serve.go": `package root
type planner struct{}
func (planner) SelectPlans() {}
func use(p planner) { p.SelectPlans() }
`,
		})
		wantFindings(t, runOne(prog, GuardDiscipline()), nil)
	})
}

func TestGuardDisciplineKeyed(t *testing.T) {
	// SelectPlanKeyed is the cache-aware scoring entry point added with the
	// inference fast path; bypassing the guard with it is just as banned.
	prog := fixture(t, map[string]string{
		"internal/predictor/predictor.go": `package predictor
type Predictor struct{}
func (p *Predictor) SelectPlanKeyed(cands []int, envs, key int) (int, []float64, error) { return 0, nil, nil }
`,
		"serve.go": `package root
import "fixture/internal/predictor"
func Serve(p *predictor.Predictor) { p.SelectPlanKeyed(nil, 0, 0) }
`,
	})
	wantFindings(t, runOne(prog, GuardDiscipline()), [][2]string{
		{"guarddiscipline", "p.SelectPlanKeyed bypasses the serving guard"},
	})
}

func TestGuardDisciplineGroups(t *testing.T) {
	// SelectPlanGroups is the fused micro-batch scoring entry point; like the
	// per-query entry points, only the guard may call it — a direct caller
	// would skip the breaker, deadline and quarantine for a whole batch at
	// once. Method values smuggle it the same way.
	prog := fixture(t, map[string]string{
		"internal/predictor/predictor.go": `package predictor
type Group struct{}
type Predictor struct{}
func (p *Predictor) SelectPlanGroups(groups []Group) {}
`,
		"serve.go": `package root
import "fixture/internal/predictor"
func Serve(p *predictor.Predictor) { p.SelectPlanGroups(nil) }
func Smuggle(p *predictor.Predictor) func([]predictor.Group) { return p.SelectPlanGroups }
`,
	})
	wantFindings(t, runOne(prog, GuardDiscipline()), [][2]string{
		{"guarddiscipline", "p.SelectPlanGroups bypasses the serving guard"},
		{"guarddiscipline", "method value p.SelectPlanGroups smuggles the raw scoring entry point"},
	})
}

func TestGuardDisciplineFleetAdmission(t *testing.T) {
	// Inside internal/fleet, a backend's serving ladder (OptimizeCtx) is
	// reachable only from serveAdmitted — anything else bypasses the
	// admission gate's token buckets.
	t.Run("raw OptimizeCtx outside serveAdmitted is flagged", func(t *testing.T) {
		prog := fixture(t, map[string]string{
			"internal/fleet/fleet.go": `package fleet
import "context"
type Backend interface {
	OptimizeCtx(ctx context.Context, q int) (any, error)
}
type tenant struct{ backend Backend }
type Registry struct{}
func (r *Registry) Route(ctx context.Context, t *tenant, q int) (any, error) {
	return t.backend.OptimizeCtx(ctx, q)
}
func (r *Registry) serveAdmitted(ctx context.Context, t *tenant, q int) (any, error) {
	return t.backend.OptimizeCtx(ctx, q)
}
`,
		})
		wantFindings(t, runOne(prog, GuardDiscipline()), [][2]string{
			{"guarddiscipline", "t.backend.OptimizeCtx inside internal/fleet bypasses the admission gate"},
		})
	})
	t.Run("method values cannot smuggle the ladder out", func(t *testing.T) {
		prog := fixture(t, map[string]string{
			"internal/fleet/fleet.go": `package fleet
import "context"
type Backend interface {
	OptimizeCtx(ctx context.Context, q int) (any, error)
}
func grab(b Backend) func(context.Context, int) (any, error) {
	return b.OptimizeCtx
}
`,
		})
		wantFindings(t, runOne(prog, GuardDiscipline()), [][2]string{
			{"guarddiscipline", "b.OptimizeCtx inside internal/fleet bypasses the admission gate"},
		})
	})
	t.Run("other packages may call OptimizeCtx freely", func(t *testing.T) {
		prog := fixture(t, map[string]string{
			"serve.go": `package root
import "context"
type dep struct{}
func (d *dep) OptimizeCtx(ctx context.Context, q int) (any, error) { return nil, nil }
func use(ctx context.Context, d *dep) { d.OptimizeCtx(ctx, 1) }
`,
		})
		wantFindings(t, runOne(prog, GuardDiscipline()), nil)
	})
}

func TestInferencePurity(t *testing.T) {
	t.Run("guard package is covered everywhere", func(t *testing.T) {
		prog := fixture(t, map[string]string{
			"internal/guard/guard.go": `package guard
import "fixture/internal/nn"
func Refit(t *nn.Tensor) {
	w := nn.Param(2, 2)
	_ = w
	t.Backward()
}
`,
		})
		wantFindings(t, runOne(prog, InferencePurity()), [][2]string{
			{"inferencepurity", "nn.Param constructs a gradient-tracked tensor"},
			{"inferencepurity", "t.Backward runs backpropagation"},
		})
	})
	t.Run("aliased autograd import is still recognized", func(t *testing.T) {
		prog := fixture(t, map[string]string{
			"internal/guard/guard.go": `package guard
import grad "fixture/internal/nn"
func Refit() { _ = grad.Param(2, 2) }
`,
		})
		wantFindings(t, runOne(prog, InferencePurity()), [][2]string{
			{"inferencepurity", "grad.Param constructs a gradient-tracked tensor"},
		})
	})
	t.Run("predictor serving-reachable chain is flagged, training is not", func(t *testing.T) {
		prog := fixture(t, map[string]string{
			"internal/predictor/predictor.go": `package predictor
import "fixture/internal/nn"
type Predictor struct{}
func (p *Predictor) PredictCost() float64 { return p.score() }
func (p *Predictor) score() float64 { _ = nn.Param(1, 1); return 0 }
func (p *Predictor) Train() { p.fit() }
func (p *Predictor) fit() { var t *nn.Tensor; t.Backward() }
`,
		})
		wantFindings(t, runOne(prog, InferencePurity()), [][2]string{
			{"inferencepurity", "nn.Param constructs a gradient-tracked tensor on the serving path (in score)"},
		})
	})
	t.Run("SelectPlanKeyed is a serving root", func(t *testing.T) {
		prog := fixture(t, map[string]string{
			"internal/predictor/predictor.go": `package predictor
import "fixture/internal/nn"
type Predictor struct{}
func (p *Predictor) SelectPlanKeyed() { p.batched() }
func (p *Predictor) batched() {
	t := nn.Param(1, 1)
	t.Backward()
}
`,
		})
		wantFindings(t, runOne(prog, InferencePurity()), [][2]string{
			{"inferencepurity", "nn.Param constructs a gradient-tracked tensor on the serving path (in batched)"},
			{"inferencepurity", "t.Backward runs backpropagation on the serving path (in batched)"},
		})
	})
	t.Run("SelectPlanGroups is a serving root", func(t *testing.T) {
		prog := fixture(t, map[string]string{
			"internal/predictor/group.go": `package predictor
import "fixture/internal/nn"
type Group struct{}
type Predictor struct{}
func (p *Predictor) SelectPlanGroups(groups []Group) { p.fused() }
func (p *Predictor) fused() { _ = nn.Param(1, 1) }
`,
		})
		wantFindings(t, runOne(prog, InferencePurity()), [][2]string{
			{"inferencepurity", "nn.Param constructs a gradient-tracked tensor on the serving path (in fused)"},
		})
	})
	t.Run("test files and unrelated packages are exempt", func(t *testing.T) {
		prog := fixture(t, map[string]string{
			"internal/guard/guard_test.go": `package guard
import "fixture/internal/nn"
func probe() { _ = nn.Param(2, 2) }
`,
			"internal/nn/train.go": `package nn
func (t *Tensor) step() { t.Backward() }
type Tensor struct{}
func (t *Tensor) Backward() {}
`,
		})
		wantFindings(t, runOne(prog, InferencePurity()), nil)
	})
}

func TestAllowlistSuppressesFixtureFinding(t *testing.T) {
	// The simrand entry is path-scoped: the same violation fires outside the
	// sanctioned package and is suppressed inside it.
	files := map[string]string{
		"internal/simrand/r.go": `package simrand
import "math/rand"
func New(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
`,
		"internal/p/p.go": `package p
import "math/rand"
func Roll() int { return rand.Intn(6) }
`,
	}
	prog := fixture(t, files)
	raw := runOne(prog, Determinism())
	if len(raw) != 2 {
		t.Fatalf("raw findings = %d, want 2:\n%s", len(raw), renderFindings(raw))
	}
	filtered := RunAll(prog, []*Analyzer{Determinism()}, DefaultAllowlist())
	if len(filtered) != 1 || !strings.HasPrefix(filtered[0].Pos.Filename, "internal/p/") {
		t.Fatalf("filtered = %v, want only the internal/p finding:\n%s", len(filtered), renderFindings(filtered))
	}
}

func TestAllowlistRequiresReason(t *testing.T) {
	f := Finding{Rule: "determinism", Message: "import of math/rand"}
	f.Pos.Filename = "internal/simrand/r.go"
	noReason := []AllowEntry{{Rule: "determinism", PathPrefix: "internal/simrand/"}}
	if Allowed(noReason, f) {
		t.Fatal("entry without Reason must not suppress findings")
	}
	withReason := []AllowEntry{{Rule: "determinism", PathPrefix: "internal/simrand/", Reason: "sanctioned boundary"}}
	if !Allowed(withReason, f) {
		t.Fatal("entry with Reason should suppress the matching finding")
	}
}

// loadRepo loads the real repository the tests run inside.
func loadRepo(t *testing.T) *Program {
	t.Helper()
	prog, err := LoadProgram("../..")
	if err != nil {
		t.Fatalf("LoadProgram(repo): %v", err)
	}
	return prog
}

// TestRepoIsClean is the meta-check ISSUE.md asks for: the full suite with
// the default allowlist reports nothing on the repository itself.
func TestRepoIsClean(t *testing.T) {
	prog := loadRepo(t)
	findings := RunAll(prog, Analyzers(), DefaultAllowlist())
	if len(findings) != 0 {
		t.Fatalf("repo has %d finding(s):\n%s", len(findings), renderFindings(findings))
	}
}

// TestAllowlistEntriesAllFire keeps the allowlist honest: every entry must
// still suppress at least one raw finding, so stale exceptions get deleted
// instead of accumulating.
func TestAllowlistEntriesAllFire(t *testing.T) {
	prog := loadRepo(t)
	var raw []Finding
	for _, a := range Analyzers() {
		raw = append(raw, a.Run(prog)...)
	}
	for _, e := range DefaultAllowlist() {
		matched := false
		for _, f := range raw {
			if Allowed([]AllowEntry{e}, f) {
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("allowlist entry {rule=%s path=%s contains=%q} matches no raw finding — delete it", e.Rule, e.PathPrefix, e.Contains)
		}
	}
}

func TestFindingStringAndSort(t *testing.T) {
	a := Finding{Rule: "nansafety", Message: "m"}
	a.Pos.Filename, a.Pos.Line = "b.go", 3
	b := Finding{Rule: "determinism", Message: "m"}
	b.Pos.Filename, b.Pos.Line = "a.go", 9
	c := Finding{Rule: "errwrap", Message: "m"}
	c.Pos.Filename, c.Pos.Line = "b.go", 3

	if got, want := a.String(), "b.go:3: [nansafety] m"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	fs := []Finding{a, b, c}
	SortFindings(fs)
	if fs[0].Pos.Filename != "a.go" || fs[1].Rule != "errwrap" || fs[2].Rule != "nansafety" {
		t.Errorf("SortFindings order wrong: %v", fs)
	}
}

func TestGuardDisciplineSwapScorerSeam(t *testing.T) {
	guardSrc := `package guard
type Guard struct{}
type Scorer interface{}
func (g *Guard) SwapScorer(s Scorer) {}
`
	t.Run("SwapScorer outside lifecycle.go is flagged", func(t *testing.T) {
		prog := fixture(t, map[string]string{
			"internal/guard/guard.go": guardSrc,
			"serve.go": `package root
import "fixture/internal/guard"
func hotfix(g *guard.Guard) { g.SwapScorer(nil) }
`,
		})
		wantFindings(t, runOne(prog, GuardDiscipline()), [][2]string{
			{"guarddiscipline", "g.SwapScorer outside the lifecycle seam"},
		})
	})
	t.Run("the lifecycle seam may swap", func(t *testing.T) {
		prog := fixture(t, map[string]string{
			"internal/guard/guard.go": guardSrc,
			"lifecycle.go": `package root
import "fixture/internal/guard"
func promote(g *guard.Guard) { g.SwapScorer(nil) }
`,
		})
		wantFindings(t, runOne(prog, GuardDiscipline()), nil)
	})
	t.Run("the guard package and test files are exempt", func(t *testing.T) {
		prog := fixture(t, map[string]string{
			"internal/guard/guard.go": guardSrc,
			"internal/guard/inner.go": `package guard
func (g *Guard) reset() { g.SwapScorer(nil) }
`,
			"swap_test.go": `package root
import "fixture/internal/guard"
func probe(g *guard.Guard) { g.SwapScorer(nil) }
`,
		})
		wantFindings(t, runOne(prog, GuardDiscipline()), nil)
	})
}
