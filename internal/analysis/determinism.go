package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
)

// Determinism enforces the seed-reproducibility contract (DESIGN.md:
// "Everything in the repo is seed-reproducible"):
//
//   - math/rand must not be imported outside internal/simrand — all
//     randomness flows through named, derivable simrand streams;
//   - time.Now / time.Since must not be called outside internal/walltime —
//     wall-clock readings are metrics-only and must never feed simulated
//     state;
//   - `for range` over a map must not feed order-sensitive sinks: appending
//     to an outer slice (unless the slice is sorted afterwards in the same
//     function), printing, accumulating with += , or calling into shared
//     mutable state, all observe Go's randomized map iteration order.
func Determinism() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc:  "forbid unseeded randomness, wall-clock reads, and order-sensitive map iteration",
		Run:  runDeterminism,
	}
}

func runDeterminism(prog *Program) []Finding {
	var out []Finding
	prog.eachSourceFile(func(pkg *Package, f *File) {
		// Forbidden imports.
		for _, imp := range f.AST.Imports {
			path, _ := stringLit(imp.Path)
			if path == "math/rand" || path == "math/rand/v2" {
				out = append(out, Finding{
					Pos:        prog.Fset.Position(imp.Pos()),
					Rule:       "determinism",
					Message:    fmt.Sprintf("import of %s is forbidden: all randomness must flow through internal/simrand's named streams", path),
					Suggestion: "derive a stream with simrand.New(seed).Derive(name) instead of math/rand",
				})
			}
		}
		// Wall-clock reads.
		timeName := importLocalName(f, "time")
		if timeName != "" {
			ast.Inspect(f.AST, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok || id.Name != timeName {
					return true
				}
				if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
					out = append(out, Finding{
						Pos:        prog.Fset.Position(call.Pos()),
						Rule:       "determinism",
						Message:    fmt.Sprintf("wall-clock read time.%s is forbidden in simulation/serving code: only internal/walltime may touch the clock", sel.Sel.Name),
						Suggestion: "time a metrics-only section with sw := walltime.Start(); ...; sw.Seconds()",
					})
				}
				return true
			})
		}
		// Order-sensitive map iteration.
		for _, fn := range fileFuncs(f) {
			out = append(out, mapRangeFindings(prog, f, fn)...)
		}
	})
	return out
}

// mapRangeFindings flags range statements over map-typed expressions whose
// body observes iteration order.
func mapRangeFindings(prog *Program, f *File, fn funcInfo) []Finding {
	var out []Finding
	pkgNames := importedPkgNames(f)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !isMapExpr(prog, fn, rs.X) {
			return true
		}
		if sink := orderSensitiveSink(prog, f, fn, pkgNames, rs); sink != "" {
			out = append(out, Finding{
				Pos:        prog.Fset.Position(rs.Pos()),
				Rule:       "determinism",
				Message:    fmt.Sprintf("range over map %q feeds an order-sensitive sink (%s): map iteration order is randomized", exprString(rs.X), sink),
				Suggestion: "collect the keys, sort them, and iterate the sorted slice",
			})
		}
		return true
	})
	return out
}

// isMapExpr decides syntactically whether e has map type: map literals and
// make(map...), identifiers assigned from them (or declared as map params /
// vars), fields declared as maps anywhere in the program, and calls to
// functions returning maps.
func isMapExpr(prog *Program, fn funcInfo, e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.CompositeLit:
		_, ok := v.Type.(*ast.MapType)
		return ok
	case *ast.CallExpr:
		if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "make" && len(v.Args) > 0 {
			_, ok := v.Args[0].(*ast.MapType)
			return ok
		}
		var name string
		switch fun := v.Fun.(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		return prog.mapFuncs[name]
	case *ast.SelectorExpr:
		return prog.mapFields[v.Sel.Name] && !prog.nonMapFields[v.Sel.Name]
	case *ast.Ident:
		return identDeclaredAsMap(fn, v.Name)
	}
	return false
}

// identDeclaredAsMap reports whether name is bound to a map inside fn: a
// `name := make(map...)` / map-literal assignment, a `var name map[...]`
// declaration, or a parameter declared with a literal map type.
func identDeclaredAsMap(fn funcInfo, name string) bool {
	if fn.Decl.Type.Params != nil {
		for _, fld := range fn.Decl.Type.Params.List {
			if _, ok := fld.Type.(*ast.MapType); !ok {
				continue
			}
			for _, id := range fld.Names {
				if id.Name == name {
					return true
				}
			}
		}
	}
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range v.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name != name || i >= len(v.Rhs) {
					continue
				}
				switch rhs := v.Rhs[i].(type) {
				case *ast.CompositeLit:
					if _, ok := rhs.Type.(*ast.MapType); ok {
						found = true
					}
				case *ast.CallExpr:
					if fid, ok := rhs.Fun.(*ast.Ident); ok && fid.Name == "make" && len(rhs.Args) > 0 {
						if _, ok := rhs.Args[0].(*ast.MapType); ok {
							found = true
						}
					}
				}
			}
		case *ast.ValueSpec:
			if _, ok := v.Type.(*ast.MapType); ok {
				for _, id := range v.Names {
					if id.Name == name {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// orderSensitiveSink scans a map-range body for constructs that observe
// iteration order, returning a short description of the first sink found
// ("" when the body is order-insensitive).
func orderSensitiveSink(prog *Program, f *File, fn funcInfo, pkgNames map[string]bool, rs *ast.RangeStmt) string {
	loopLocal := map[string]bool{}
	declaredIdents(rs, loopLocal)

	sink := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch v := n.(type) {
		case *ast.AssignStmt:
			// x = append(x, ...) onto an outer slice, unless x is sorted
			// later in the same function (sorted output is order-free).
			for i, rhs := range v.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
					continue
				}
				if i >= len(v.Lhs) {
					continue
				}
				target := rootIdent(v.Lhs[i])
				if target == nil || loopLocal[target.Name] {
					continue
				}
				if !sortedAfter(fn, target.Name) {
					sink = fmt.Sprintf("append to outer slice %q without a subsequent sort", target.Name)
					return false
				}
			}
			// Compound accumulation (x += v): float accumulation is
			// order-sensitive in the low bits; integer counters should use
			// x++ which is exempt.
			if v.Tok == token.ADD_ASSIGN || v.Tok == token.SUB_ASSIGN {
				target := rootIdent(v.Lhs[0])
				if target != nil && !loopLocal[target.Name] && !isIntLiteral(v.Rhs[0]) {
					sink = fmt.Sprintf("accumulation into outer %q (float sums depend on order; use x++ for counts)", target.Name)
					return false
				}
			}
		case *ast.CallExpr:
			switch fun := v.Fun.(type) {
			case *ast.SelectorExpr:
				root := rootIdent(fun.X)
				if root == nil {
					return true
				}
				if pkgNames[root.Name] {
					// Package calls are assumed pure, except printing.
					if root.Name == importLocalName(f, "fmt") && isPrintName(fun.Sel.Name) {
						sink = fmt.Sprintf("fmt.%s output inside map iteration", fun.Sel.Name)
						return false
					}
					return true
				}
				if !loopLocal[root.Name] {
					sink = fmt.Sprintf("call %s.%s on shared state declared outside the loop", exprString(fun.X), fun.Sel.Name)
					return false
				}
			case *ast.Ident:
				// Calls to program-defined functions passing outer state.
				if !prog.funcNames[fun.Name] {
					return true
				}
				for _, arg := range v.Args {
					root := rootIdent(arg)
					if root != nil && !loopLocal[root.Name] && !pkgNames[root.Name] {
						sink = fmt.Sprintf("call %s(...) passing shared state %q", fun.Name, root.Name)
						return false
					}
				}
			}
		}
		return true
	})
	return sink
}

// sortedAfter reports whether fn's body contains a sort call that receives
// name as an argument (sort.Ints(name), sort.Slice(name, ...), ...).
func sortedAfter(fn funcInfo, name string) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if root := rootIdent(arg); root != nil && root.Name == name {
				found = true
			}
		}
		return !found
	})
	return found
}

func isIntLiteral(e ast.Expr) bool {
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Kind == token.INT
}

func isPrintName(name string) bool {
	switch name {
	case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
		return true
	}
	return false
}
