package analysis

import (
	"fmt"
	"go/ast"
	"strings"
)

// guardSpec describes one mutex-guarded type: which fields its mutex
// protects, and where it lives.
type guardSpec struct {
	PkgPath string // import path of the owning package
	PkgName string
	Type    string   // named type, e.g. "Cluster"
	Mutex   string   // the guarding mutex field, e.g. "mu"
	Fields  []string // fields that must only be touched under the mutex
}

// guardedTypes is the PR-1 concurrency model, spelled out: the serving path
// may only reach this state through the exported, lock-taking methods.
var guardedTypes = []guardSpec{
	{
		PkgPath: "loam/internal/cluster",
		PkgName: "cluster",
		Type:    "Cluster",
		Mutex:   "mu",
		Fields:  []string{"machines", "now", "history", "histPos", "histLen", "rng"},
	},
	{
		PkgPath: "loam/internal/history",
		PkgName: "history",
		Type:    "Repository",
		Mutex:   "mu",
		Fields:  []string{"entries"},
	},
}

// LockDiscipline enforces the concurrency model added in PR 1: the
// mutex-guarded state of cluster.Cluster and history.Repository is only
// touched (a) inside the owning package, by methods that either take the
// mutex or carry the `*Locked` suffix marking "caller holds the lock", and
// (b) never by direct field access from other packages.
func LockDiscipline() *Analyzer {
	return &Analyzer{
		Name: "lockdiscipline",
		Doc:  "guarded state of cluster.Cluster / history.Repository flows through lock-taking methods",
		Run:  runLockDiscipline,
	}
}

func runLockDiscipline(prog *Program) []Finding {
	var out []Finding
	prog.eachSourceFile(func(pkg *Package, f *File) {
		for _, spec := range guardedTypes {
			if pkg.ImportPath == spec.PkgPath ||
				// Fixture programs exercise the rule under their own module
				// path; match on the package-path suffix.
				strings.HasSuffix(pkg.ImportPath, "/"+spec.PkgName) && pkg.Name == spec.PkgName {
				out = append(out, insidePackageFindings(prog, f, spec)...)
			} else {
				out = append(out, outsidePackageFindings(prog, f, spec)...)
			}
		}
	})
	return out
}

// insidePackageFindings checks the owning package: every method on the
// guarded type that reads or writes guarded fields must lock the mutex or be
// named *Locked (the repo's "caller holds the lock" convention).
func insidePackageFindings(prog *Program, f *File, spec guardSpec) []Finding {
	var out []Finding
	guarded := map[string]bool{}
	for _, g := range spec.Fields {
		guarded[g] = true
	}
	for _, fn := range fileFuncs(f) {
		fd := fn.Decl
		if fd.Recv == nil || namedTypeString(fd.Recv.List[0].Type) != spec.Type {
			continue
		}
		if strings.HasSuffix(fd.Name.Name, "Locked") {
			continue
		}
		if len(fd.Recv.List[0].Names) == 0 {
			continue
		}
		recv := fd.Recv.List[0].Names[0].Name
		touched, locks := "", false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.SelectorExpr:
				if id, ok := v.X.(*ast.Ident); ok && id.Name == recv && guarded[v.Sel.Name] && touched == "" {
					touched = v.Sel.Name
				}
			case *ast.CallExpr:
				// recv.mu.Lock() / recv.mu.RLock()
				sel, ok := v.Fun.(*ast.SelectorExpr)
				if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
					return true
				}
				inner, ok := sel.X.(*ast.SelectorExpr)
				if !ok || inner.Sel.Name != spec.Mutex {
					return true
				}
				if id, ok := inner.X.(*ast.Ident); ok && id.Name == recv {
					locks = true
				}
			}
			return true
		})
		if touched != "" && !locks {
			out = append(out, Finding{
				Pos:  prog.Fset.Position(fd.Pos()),
				Rule: "lockdiscipline",
				Message: fmt.Sprintf("method %s.%s touches guarded field %q without taking %s and is not named *Locked",
					spec.Type, fd.Name.Name, touched, spec.Mutex),
				Suggestion: fmt.Sprintf("take %s.%s.Lock/RLock, or rename to %sLocked and document that callers hold the lock", recv, spec.Mutex, fd.Name.Name),
			})
		}
	}
	return out
}

// outsidePackageFindings checks every other package: no expression of the
// guarded type may have its guarded fields (or mutex) accessed directly.
// Types are resolved syntactically from declared vars, params and the
// program-wide struct-field index.
func outsidePackageFindings(prog *Program, f *File, spec guardSpec) []Finding {
	var out []Finding
	qualified := spec.PkgName + "." + spec.Type
	guarded := map[string]bool{spec.Mutex: true}
	for _, g := range spec.Fields {
		guarded[g] = true
	}
	for _, fn := range fileFuncs(f) {
		params := paramTypes(fn.Decl)
		// Locally declared `var x *cluster.Cluster` / `x := ...` with an
		// explicit type.
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			if tn := namedTypeString(vs.Type); tn != "" {
				for _, id := range vs.Names {
					params[id.Name] = tn
				}
			}
			return true
		})
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !guarded[sel.Sel.Name] {
				return true
			}
			if typeOfExpr(prog, params, sel.X) != qualified {
				return true
			}
			out = append(out, Finding{
				Pos:  prog.Fset.Position(sel.Pos()),
				Rule: "lockdiscipline",
				Message: fmt.Sprintf("direct access to mutex-guarded %s.%s from outside package %s",
					qualified, sel.Sel.Name, spec.PkgName),
				Suggestion: "go through the guarded methods (they take the RWMutex); never reach into the struct",
			})
			return true
		})
	}
	return out
}

// typeOfExpr resolves an expression's named type syntactically: identifiers
// via declared params/vars, selector chains via the program-wide field-name
// index. Returns "pkg.Type" or "".
func typeOfExpr(prog *Program, params map[string]string, e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return params[v.Name]
	case *ast.SelectorExpr:
		return prog.fieldTypes[v.Sel.Name]
	case *ast.ParenExpr:
		return typeOfExpr(prog, params, v.X)
	case *ast.StarExpr:
		return typeOfExpr(prog, params, v.X)
	}
	return ""
}
