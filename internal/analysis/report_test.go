package analysis

import (
	"strings"
	"testing"
)

// TestRunReport: Run returns the full report — suppressed findings keep their
// allowlist Reason, and entries that match nothing are surfaced as Stale so
// the CLI can fail the build on them.
func TestRunReport(t *testing.T) {
	prog := fixture(t, map[string]string{"internal/p/p.go": `package p
import "math/rand"
func Roll() int { return rand.Intn(6) }
`})
	allow := []AllowEntry{
		{Rule: "determinism", PathPrefix: "internal/p/", Reason: "fixture exception"},
		{Rule: "determinism", PathPrefix: "internal/q/", Reason: "matches nothing"},
	}
	rep := Run(prog, []*Analyzer{Determinism()}, allow)
	if len(rep.Findings) != 0 {
		t.Fatalf("all findings should be suppressed:\n%s", renderFindings(rep.Findings))
	}
	if len(rep.Suppressed) == 0 {
		t.Fatal("suppressed findings missing from the report")
	}
	for _, s := range rep.Suppressed {
		if s.Reason != "fixture exception" {
			t.Errorf("suppressed finding carries reason %q, want the matching entry's", s.Reason)
		}
	}
	if len(rep.Stale) != 1 || rep.Stale[0].PathPrefix != "internal/q/" {
		t.Fatalf("Stale = %+v, want exactly the internal/q/ entry", rep.Stale)
	}
}

// TestRunReportTightAllowlist: when every entry matches, Stale is empty.
func TestRunReportTightAllowlist(t *testing.T) {
	prog := fixture(t, map[string]string{"internal/p/p.go": `package p
import "math/rand"
func Roll() int { return rand.Intn(6) }
`})
	allow := []AllowEntry{{Rule: "determinism", PathPrefix: "internal/p/", Reason: "fixture exception"}}
	rep := Run(prog, []*Analyzer{Determinism()}, allow)
	if len(rep.Stale) != 0 {
		t.Fatalf("Stale = %+v, want empty", rep.Stale)
	}
}

// TestAllowedBy: the index returned is the first matching entry's, and
// reason-less entries never match (they cannot feed stale tracking either).
func TestAllowedBy(t *testing.T) {
	f := Finding{Rule: "allocdiscipline", Message: "make allocates in helper"}
	f.Pos.Filename = "internal/x/x.go"
	allow := []AllowEntry{
		{Rule: "allocdiscipline", PathPrefix: "internal/x/"},
		{Rule: "allocdiscipline", PathPrefix: "internal/x/", Reason: "ok"},
	}
	idx, ok := AllowedBy(allow, f)
	if !ok || idx != 1 {
		t.Fatalf("AllowedBy = (%d, %v), want (1, true): entry 0 has no Reason", idx, ok)
	}
	if _, ok := AllowedBy(allow, Finding{Rule: "ctxflow"}); ok {
		t.Fatal("rule mismatch must not match")
	}
}

// TestSuppressedOrdering: the report's suppressed list is sorted like the
// findings list, so -json output is stable.
func TestSuppressedOrdering(t *testing.T) {
	prog := fixture(t, map[string]string{
		"internal/p/b.go": `package p
import "math/rand"
func B() int { return rand.Intn(6) }
`,
		"internal/p/a.go": `package p
import "math/rand"
func A() int { return rand.Intn(6) }
`,
	})
	allow := []AllowEntry{{Rule: "determinism", PathPrefix: "internal/p/", Reason: "fixture"}}
	rep := Run(prog, []*Analyzer{Determinism()}, allow)
	for i := 1; i < len(rep.Suppressed); i++ {
		a, b := rep.Suppressed[i-1].Finding, rep.Suppressed[i].Finding
		if a.Pos.Filename > b.Pos.Filename {
			t.Fatalf("suppressed not sorted: %s after %s", a.Pos.Filename, b.Pos.Filename)
		}
	}
	if len(rep.Suppressed) < 2 || !strings.HasSuffix(rep.Suppressed[0].Finding.Pos.Filename, "a.go") {
		t.Fatalf("want a.go first in %d suppressed findings", len(rep.Suppressed))
	}
}
