// Package analysis is a zero-dependency static-analysis framework for this
// repository, built on stdlib go/parser, go/ast and go/token only. It loads
// every package under the module root and runs a pluggable set of analyzers
// that machine-check the repo's load-bearing conventions:
//
//   - determinism: seed-reproducibility (no math/rand outside
//     internal/simrand, no wall-clock reads outside internal/walltime, no
//     order-sensitive iteration over maps)
//   - lockdiscipline: all access to the mutex-guarded state of
//     cluster.Cluster and history.Repository goes through guarded methods
//   - nansafety: no raw float comparisons on cost/estimate values where a
//     NaN operand would silently win or lose a plan choice
//   - errwrap: errors are wrapped with %w and never double-prefixed
//   - guarddiscipline: predictor plan scoring outside internal/guard and
//     internal/predictor flows through the serving guard (guard.Guard), so
//     deadline, circuit breaker and quarantine cannot be bypassed
//   - inferencepurity: serving-path code (internal/guard, and predictor
//     functions reachable from the serving entry points) never constructs
//     gradient-tracked tensors or invokes autograd backpropagation
//   - iodiscipline: raw file writes (os.WriteFile/Create/Rename) outside
//     internal/atomicio flow through atomicio.FS, so every durable artifact
//     gets the atomic temp+fsync+rename treatment the crash-recovery
//     contract assumes
//

// Findings are reported as "file:line: [rule] message". Intentional
// exceptions live in the commented allowlist (see allowlist.go), never in
// analyzer logic. The suite runs as cmd/loam-vet from `make lint`.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos     token.Position
	Rule    string
	Message string
	// Suggestion is an optional rewrite hint, printed by loam-vet -hints.
	Suggestion string
}

// String formats the finding in the canonical "file:line: [rule] message"
// shape that editors and CI logs pick up.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Message)
}

// Analyzer is one pluggable rule set run over the whole loaded program.
// Whole-program (rather than per-package) granularity lets analyzers build
// cross-package indexes, e.g. errwrap's callee-prefix map.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(prog *Program) []Finding
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Determinism(),
		LockDiscipline(),
		NaNSafety(),
		ErrWrap(),
		GuardDiscipline(),
		InferencePurity(),
		AllocDiscipline(),
		LockOrder(),
		CtxFlow(),
		IODiscipline(),
	}
}

// Suppressed pairs an allowlisted finding with the entry's Reason, so tools
// (loam-vet -json) can show what was waived and why.
type Suppressed struct {
	Finding Finding
	Reason  string
}

// Report is the full result of one suite run: surviving findings, the
// findings the allowlist absorbed, and the allowlist entries that matched
// nothing — stale suppressions are bugs waiting to hide the next real
// finding, so loam-vet fails on them.
type Report struct {
	Findings   []Finding
	Suppressed []Suppressed
	Stale      []AllowEntry
}

// Run executes the analyzers, filters through the allowlist, and tracks
// which entries fired. Findings and suppressions come back sorted.
func Run(prog *Program, analyzers []*Analyzer, allow []AllowEntry) Report {
	var rep Report
	matched := make([]bool, len(allow))
	for _, a := range analyzers {
		for _, f := range a.Run(prog) {
			if i, ok := AllowedBy(allow, f); ok {
				matched[i] = true
				rep.Suppressed = append(rep.Suppressed, Suppressed{Finding: f, Reason: allow[i].Reason})
			} else {
				rep.Findings = append(rep.Findings, f)
			}
		}
	}
	for i, e := range allow {
		if !matched[i] {
			rep.Stale = append(rep.Stale, e)
		}
	}
	SortFindings(rep.Findings)
	sort.Slice(rep.Suppressed, func(i, j int) bool {
		a, b := rep.Suppressed[i].Finding, rep.Suppressed[j].Finding
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return rep
}

// RunAll runs the given analyzers and filters the findings through the
// allowlist, returning the surviving findings sorted by position.
func RunAll(prog *Program, analyzers []*Analyzer, allow []AllowEntry) []Finding {
	return Run(prog, analyzers, allow).Findings
}

// SortFindings orders findings by file, line, then rule, so output is stable
// across runs and map-free.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Pos.Filename != fs[j].Pos.Filename {
			return fs[i].Pos.Filename < fs[j].Pos.Filename
		}
		if fs[i].Pos.Line != fs[j].Pos.Line {
			return fs[i].Pos.Line < fs[j].Pos.Line
		}
		return fs[i].Rule < fs[j].Rule
	})
}
