// Package stats models the optimizer-visible statistics of a project —
// deliberately decoupled from the warehouse's hidden ground truth.
//
// Per the paper (§2.1), MaxCompute does not automatically maintain attribute
// statistics: histograms and NDVs are often stale or missing, and cost
// estimation falls back to coarse, metadata-driven approximations such as
// historical table row counts. This package reproduces exactly that failure
// mode (Challenge C2): a View is a snapshot whose per-table row counts may
// lag the truth and whose per-column statistics may be absent or noisy.
package stats

import (
	"loam/internal/expr"
	"loam/internal/simrand"
	"loam/internal/warehouse"
)

// Policy controls how degraded a project's statistics are. The experiments
// tune these knobs per project archetype: high-headroom projects in the paper
// are precisely those whose native optimizer works from bad statistics.
type Policy struct {
	// ColumnStatsProb is the probability that a table has any column-level
	// statistics (NDV, skew estimate) at all.
	ColumnStatsProb float64
	// FreshProb is the probability that an existing snapshot is current; a
	// stale snapshot lags by up to MaxStalenessDays.
	FreshProb float64
	// MaxStalenessDays bounds how old a stale snapshot can be.
	MaxStalenessDays int
	// NDVNoise is the multiplicative log-normal sigma applied to NDV
	// estimates even when statistics exist (sampling error).
	NDVNoise float64
}

// DefaultPolicy returns a moderately degraded statistics policy.
func DefaultPolicy() Policy {
	return Policy{ColumnStatsProb: 0.6, FreshProb: 0.5, MaxStalenessDays: 25, NDVNoise: 0.3}
}

// ColumnStats is the optimizer's (possibly wrong) belief about one column.
type ColumnStats struct {
	NDV      int64
	Skew     float64
	NullFrac float64
}

// TableStats is the optimizer's belief about one table.
type TableStats struct {
	// SnapshotDay is when the snapshot was taken; row counts reflect that
	// day, not the present.
	SnapshotDay int
	Rows        int64
	Partitions  int
	// Columns is nil when column statistics are missing entirely, in which
	// case selectivity estimation falls back to magic constants and the
	// optimizer disables statistics-dependent transformations (join
	// reordering) for queries touching this table.
	Columns map[string]ColumnStats
}

// View is a statistics snapshot of a project as seen by the native optimizer
// on a given day. It implements expr.DistProvider with *estimated*
// selectivities.
type View struct {
	AsOfDay int
	Tables  map[string]*TableStats
}

var _ expr.DistProvider = (*View)(nil)

// Snapshot builds the optimizer-visible view of a project on the given day,
// degrading the truth according to the policy. The derivation is
// deterministic in rng.
func Snapshot(rng *simrand.RNG, p *warehouse.Project, day int, pol Policy) *View {
	v := &View{AsOfDay: day, Tables: make(map[string]*TableStats, len(p.Tables))}
	for i, t := range p.Tables {
		if !t.AliveOn(day) {
			continue
		}
		tRNG := rng.DeriveN("stats:"+t.ID, i)
		snapDay := day
		if !tRNG.Bool(pol.FreshProb) {
			lag := 1 + tRNG.Intn(max(1, pol.MaxStalenessDays))
			snapDay = day - lag
			if snapDay < t.CreatedDay {
				snapDay = t.CreatedDay
			}
		}
		ts := &TableStats{
			SnapshotDay: snapDay,
			Rows:        t.RowsAt(snapDay),
			Partitions:  t.Partitions,
		}
		if tRNG.Bool(pol.ColumnStatsProb) {
			ts.Columns = make(map[string]ColumnStats, len(t.Columns))
			for _, c := range t.Columns {
				ndv := float64(c.NDV) * tRNG.LogNormal(0, pol.NDVNoise)
				if ndv < 1 {
					ndv = 1
				}
				ts.Columns[c.ID] = ColumnStats{
					NDV:      int64(ndv),
					Skew:     c.Skew * tRNG.Uniform(0.6, 1.4),
					NullFrac: c.NullFrac,
				}
			}
		}
		v.Tables[t.ID] = ts
	}
	return v
}

// RowEstimate returns the optimizer's row-count belief for a table. Missing
// tables get a default guess — metadata-driven approximation per §2.1.
func (v *View) RowEstimate(tableID string) int64 {
	if ts, ok := v.Tables[tableID]; ok {
		return ts.Rows
	}
	return 10_000
}

// PartitionEstimate returns the believed partition count.
func (v *View) PartitionEstimate(tableID string) int {
	if ts, ok := v.Tables[tableID]; ok && ts.Partitions > 0 {
		return ts.Partitions
	}
	return 1
}

// HasColumnStats reports whether column-level statistics exist for a table.
// Join reordering is disabled by the native optimizer for queries touching
// tables without column statistics (§2.1).
func (v *View) HasColumnStats(tableID string) bool {
	ts, ok := v.Tables[tableID]
	return ok && ts.Columns != nil
}

// NDVEstimate returns the believed NDV of a column, or a magic default when
// statistics are missing.
func (v *View) NDVEstimate(col expr.ColumnRef) int64 {
	if ts, ok := v.Tables[col.Table]; ok && ts.Columns != nil {
		if cs, ok := ts.Columns[col.Column]; ok {
			return cs.NDV
		}
	}
	// Missing: assume a tenth of believed rows are distinct, floor 10.
	guess := v.RowEstimate(col.Table) / 10
	if guess < 10 {
		guess = 10
	}
	return guess
}

// Magic selectivity constants used when column statistics are missing —
// the classic System-R style fallbacks.
const (
	magicEQ      = 0.01
	magicRange   = 1.0 / 3.0
	magicLike    = 0.05
	magicIn      = 0.04
	magicIsNull  = 0.01
	magicBetween = 0.25
)

// CompareSelectivity returns the optimizer's selectivity estimate. With
// column statistics present it reuses the warehouse's Zipf arithmetic on the
// *estimated* parameters; otherwise it returns magic constants.
func (v *View) CompareSelectivity(col expr.ColumnRef, fn expr.Func, args []float64) float64 {
	ts, ok := v.Tables[col.Table]
	if ok && ts.Columns != nil {
		if cs, ok := ts.Columns[col.Column]; ok {
			est := &warehouse.Column{ID: col.Column, NDV: cs.NDV, Skew: cs.Skew, NullFrac: cs.NullFrac}
			return warehouse.ColumnSelectivity(est, fn, args)
		}
	}
	switch fn {
	case expr.FuncEQ:
		return magicEQ
	case expr.FuncNE:
		return 1 - magicEQ
	case expr.FuncLT, expr.FuncLE, expr.FuncGT, expr.FuncGE:
		return magicRange
	case expr.FuncIn:
		s := magicIn * float64(len(args))
		if s > 1 {
			s = 1
		}
		return s
	case expr.FuncLike:
		return magicLike
	case expr.FuncBetween:
		return magicBetween
	case expr.FuncIsNull:
		return magicIsNull
	default:
		return 1
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
