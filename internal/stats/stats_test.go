package stats

import (
	"math"
	"testing"

	"loam/internal/expr"
	"loam/internal/simrand"
	"loam/internal/warehouse"
)

func project() *warehouse.Project {
	a := warehouse.DefaultArchetype()
	a.Name = "s"
	a.TempTableFrac = 0
	return warehouse.Generate(simrand.New(11), a)
}

func TestSnapshotDeterminism(t *testing.T) {
	p := project()
	v1 := Snapshot(simrand.New(3), p, 10, DefaultPolicy())
	v2 := Snapshot(simrand.New(3), p, 10, DefaultPolicy())
	if len(v1.Tables) != len(v2.Tables) {
		t.Fatal("table counts differ")
	}
	for id, ts1 := range v1.Tables {
		ts2 := v2.Tables[id]
		if ts2 == nil || ts1.Rows != ts2.Rows || ts1.SnapshotDay != ts2.SnapshotDay {
			t.Fatalf("snapshot for %s differs", id)
		}
	}
}

func TestSnapshotStalenessBounds(t *testing.T) {
	p := project()
	pol := Policy{ColumnStatsProb: 1, FreshProb: 0, MaxStalenessDays: 10, NDVNoise: 0.1}
	v := Snapshot(simrand.New(4), p, 20, pol)
	for id, ts := range v.Tables {
		if ts.SnapshotDay > 20 || ts.SnapshotDay < 20-10 {
			t.Fatalf("%s snapshot day %d out of [10,20]", id, ts.SnapshotDay)
		}
	}
}

func TestSnapshotFreshPolicy(t *testing.T) {
	p := project()
	pol := Policy{ColumnStatsProb: 1, FreshProb: 1, MaxStalenessDays: 10}
	v := Snapshot(simrand.New(5), p, 7, pol)
	for id, ts := range v.Tables {
		if ts.SnapshotDay != 7 {
			t.Fatalf("%s not fresh: day %d", id, ts.SnapshotDay)
		}
		if ts.Columns == nil {
			t.Fatalf("%s missing column stats despite prob 1", id)
		}
	}
}

func TestSnapshotMissingColumnStats(t *testing.T) {
	p := project()
	pol := Policy{ColumnStatsProb: 0, FreshProb: 1}
	v := Snapshot(simrand.New(6), p, 3, pol)
	for id, ts := range v.Tables {
		if ts.Columns != nil {
			t.Fatalf("%s has column stats despite prob 0", id)
		}
		if v.HasColumnStats(id) {
			t.Fatalf("HasColumnStats(%s) true", id)
		}
	}
}

func TestSnapshotSkipsDeadTables(t *testing.T) {
	p := &warehouse.Project{Tables: []*warehouse.Table{
		{ID: "alive", Rows: 100, LifespanDays: 100, Columns: []*warehouse.Column{{ID: "c", NDV: 10}}},
		{ID: "dead", Rows: 100, CreatedDay: 50, LifespanDays: 10, Columns: []*warehouse.Column{{ID: "c", NDV: 10}}},
	}}
	v := Snapshot(simrand.New(7), p, 5, DefaultPolicy())
	if _, ok := v.Tables["dead"]; ok {
		t.Fatal("dead table in snapshot")
	}
	if _, ok := v.Tables["alive"]; !ok {
		t.Fatal("alive table missing")
	}
}

func TestRowEstimateFallback(t *testing.T) {
	v := &View{Tables: map[string]*TableStats{"t": {Rows: 123}}}
	if v.RowEstimate("t") != 123 {
		t.Fatal("known table estimate wrong")
	}
	if v.RowEstimate("unknown") != 10_000 {
		t.Fatal("fallback estimate wrong")
	}
}

func TestNDVEstimateFallback(t *testing.T) {
	v := &View{Tables: map[string]*TableStats{
		"t":  {Rows: 5000, Columns: map[string]ColumnStats{"c": {NDV: 77}}},
		"t2": {Rows: 5000},
	}}
	if got := v.NDVEstimate(expr.ColumnRef{Table: "t", Column: "c"}); got != 77 {
		t.Fatalf("NDV %d", got)
	}
	// Missing column stats: rows/10.
	if got := v.NDVEstimate(expr.ColumnRef{Table: "t2", Column: "c"}); got != 500 {
		t.Fatalf("fallback NDV %d", got)
	}
	// Floor at 10.
	v.Tables["t3"] = &TableStats{Rows: 10}
	if got := v.NDVEstimate(expr.ColumnRef{Table: "t3", Column: "c"}); got != 10 {
		t.Fatalf("floored NDV %d", got)
	}
}

func TestMagicConstants(t *testing.T) {
	v := &View{Tables: map[string]*TableStats{"t": {Rows: 100}}}
	col := expr.ColumnRef{Table: "t", Column: "c"}
	cases := []struct {
		fn   expr.Func
		args []float64
		want float64
	}{
		{expr.FuncEQ, []float64{1}, magicEQ},
		{expr.FuncNE, []float64{1}, 1 - magicEQ},
		{expr.FuncLT, []float64{1}, magicRange},
		{expr.FuncLike, []float64{1}, magicLike},
		{expr.FuncBetween, []float64{1, 2}, magicBetween},
		{expr.FuncIsNull, nil, magicIsNull},
		{expr.FuncIn, []float64{1, 2, 3}, 3 * magicIn},
	}
	for _, c := range cases {
		if got := v.CompareSelectivity(col, c.fn, c.args); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("%v magic = %g, want %g", c.fn, got, c.want)
		}
	}
}

func TestEstimatedSelectivityUsesStats(t *testing.T) {
	v := &View{Tables: map[string]*TableStats{
		"t": {Rows: 1000, Columns: map[string]ColumnStats{"c": {NDV: 100}}},
	}}
	col := expr.ColumnRef{Table: "t", Column: "c"}
	got := v.CompareSelectivity(col, expr.FuncEQ, []float64{5})
	if math.Abs(got-0.01) > 1e-9 { // uniform over 100 values
		t.Fatalf("EQ with stats = %g, want 0.01", got)
	}
}

func TestNDVNoisePerturbsEstimates(t *testing.T) {
	p := project()
	noisy := Policy{ColumnStatsProb: 1, FreshProb: 1, NDVNoise: 0.8}
	v := Snapshot(simrand.New(8), p, 1, noisy)
	diffs := 0
	for _, tb := range p.Tables {
		for _, c := range tb.Columns {
			est := v.Tables[tb.ID].Columns[c.ID].NDV
			if est != c.NDV {
				diffs++
			}
		}
	}
	if diffs == 0 {
		t.Fatal("NDV noise had no effect")
	}
}

func TestPartitionEstimate(t *testing.T) {
	v := &View{Tables: map[string]*TableStats{"t": {Partitions: 9}}}
	if v.PartitionEstimate("t") != 9 {
		t.Fatal("partitions wrong")
	}
	if v.PartitionEstimate("missing") != 1 {
		t.Fatal("fallback partitions wrong")
	}
}
