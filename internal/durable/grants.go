package durable

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"loam/internal/atomicio"
	"loam/internal/telemetry"
)

// GrantEntry is one tenant's persisted plan-cache grant.
type GrantEntry struct {
	Name    string `json:"name"`
	Granted int64  `json:"granted"`
}

// GrantTable is the fleet registry's durable cache-budget state: the global
// budget and every tenant's grant, sorted by name so identical states
// serialize identically.
type GrantTable struct {
	Budget int64        `json:"budget"`
	Grants []GrantEntry `json:"grants"`
}

// FleetStore persists a fleet registry's grant table so Rebalance budgets
// survive restarts. It shares the durable layout conventions (one
// checksummed frame, atomic swap) but roots its own directory — a registry
// is not a deployment.
type FleetStore struct {
	dir      string
	fs       *atomicio.FS
	saves    *telemetry.Counter
	restores *telemetry.Counter
	errs     *telemetry.Counter
}

// OpenFleet roots a fleet store at dir, creating it on first use.
func OpenFleet(dir string, fs *atomicio.FS) (*FleetStore, error) {
	if fs == nil {
		fs = atomicio.Default
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: mkdir %s: %w", dir, err)
	}
	return &FleetStore{dir: dir, fs: fs}, nil
}

// Instrument wires the fleet store's durable.grants.* metrics into reg.
func (f *FleetStore) Instrument(reg *telemetry.Registry) {
	f.saves = reg.Counter("durable.grants.saves")
	f.restores = reg.Counter("durable.grants.restores")
	f.errs = reg.Counter("durable.errors")
}

// SaveGrants atomically replaces the grant table. Entries are sorted by
// name before writing; the caller's slice is not modified.
func (f *FleetStore) SaveGrants(t GrantTable) error {
	grants := append([]GrantEntry(nil), t.Grants...)
	sort.Slice(grants, func(i, j int) bool { return grants[i].Name < grants[j].Name })
	t.Grants = grants
	payload, err := json.Marshal(t)
	if err != nil {
		return fmt.Errorf("durable: marshal grants: %w", err)
	}
	if err := f.fs.WriteFile(filepath.Join(f.dir, grantsFile), atomicio.EncodeFrame(payload)); err != nil {
		f.errs.Inc()
		return fmt.Errorf("durable: save grants: %w", err)
	}
	f.saves.Inc()
	return nil
}

// LoadGrants returns the persisted grant table, or nil if none was ever
// saved. A table that fails its frame checksum is ErrCorruptStore.
func (f *FleetStore) LoadGrants() (*GrantTable, error) {
	data, err := os.ReadFile(filepath.Join(f.dir, grantsFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("durable: read grants: %w", err)
	}
	payload, rest, err := atomicio.DecodeFrame(data)
	if err != nil || len(rest) != 0 {
		return nil, fmt.Errorf("%w: grants frame: %v", ErrCorruptStore, err)
	}
	var t GrantTable
	if err := json.Unmarshal(payload, &t); err != nil {
		return nil, fmt.Errorf("%w: grants payload: %v", ErrCorruptStore, err)
	}
	f.restores.Inc()
	return &t, nil
}
