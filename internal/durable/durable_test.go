package durable

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"loam/internal/atomicio"
	"loam/internal/telemetry"
)

// commitDeploy opens a store at dir and commits an initial deploy
// checkpoint carrying data as the version-1 snapshot.
func commitDeploy(t *testing.T, dir string, fs *atomicio.FS, data []byte) *Store {
	t.Helper()
	s, err := Open(dir, fs)
	if err != nil {
		t.Fatal(err)
	}
	name, sum, err := s.PutSnapshot(1, data)
	if err != nil {
		t.Fatal(err)
	}
	err = s.Commit(Manifest{
		Version: 1, Next: 2, Event: EventDeploy,
		Snapshot: name, SnapshotSum: sum,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreCheckpointAndReopen(t *testing.T) {
	dir := t.TempDir()
	s := commitDeploy(t, dir, nil, []byte("model-one"))

	// Promote: version 2 with rollback insurance on version 1.
	name2, sum2, err := s.PutSnapshot(2, []byte("model-two"))
	if err != nil {
		t.Fatal(err)
	}
	man := *s.Manifest()
	err = s.Commit(Manifest{
		Version: 2, Parent: 1, Next: 3, Event: EventPromote, Probation: 4,
		Snapshot: name2, SnapshotSum: sum2,
		PrevVersion: 1, PrevSnapshot: man.Snapshot, PrevSum: man.SnapshotSum,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Reopen: the manifest and both snapshots survive.
	s2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := s2.Manifest()
	if m == nil || m.Version != 2 || m.Seq != 2 || m.Event != EventPromote || m.Probation != 4 {
		t.Fatalf("manifest after reopen: %+v", m)
	}
	if m.Next != 3 {
		t.Fatalf("next counter lost: %+v", m)
	}
	cur, err := s2.ReadSnapshot(m.Snapshot, m.SnapshotSum)
	if err != nil || string(cur) != "model-two" {
		t.Fatalf("current snapshot: %q err=%v", cur, err)
	}
	prev, err := s2.ReadSnapshot(m.PrevSnapshot, m.PrevSum)
	if err != nil || string(prev) != "model-one" {
		t.Fatalf("rollback snapshot: %q err=%v", prev, err)
	}
}

func TestStoreGCRemovesUnreferenced(t *testing.T) {
	dir := t.TempDir()
	s := commitDeploy(t, dir, nil, []byte("m1"))
	// An orphan from an interrupted checkpoint: durable but never committed.
	if _, _, err := s.PutSnapshot(9, []byte("orphan")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, modelsDir, snapshotName(9))); err != nil {
		t.Fatal("orphan should exist before reopen")
	}
	if _, err := Open(dir, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, modelsDir, snapshotName(9))); !os.IsNotExist(err) {
		t.Fatal("reopen should GC the orphan")
	}
	// The referenced snapshot stays.
	if _, err := os.Stat(filepath.Join(dir, modelsDir, snapshotName(1))); err != nil {
		t.Fatal("referenced snapshot must survive GC")
	}
}

func TestOpenRejectsBitFlippedSnapshot(t *testing.T) {
	dir := t.TempDir()
	commitDeploy(t, dir, nil, []byte("model-bytes"))
	path := filepath.Join(dir, modelsDir, snapshotName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[3] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, nil); !errors.Is(err, ErrCorruptStore) {
		t.Fatalf("Open on flipped snapshot: want ErrCorruptStore, got %v", err)
	}
	rep := Fsck(dir)
	if rep.OK() {
		t.Fatal("fsck must flag the flipped snapshot")
	}
}

func TestOpenRejectsCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	commitDeploy(t, dir, nil, []byte("m"))
	path := filepath.Join(dir, manifestFile)
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0x01
	os.WriteFile(path, data, 0o644)
	if _, err := Open(dir, nil); !errors.Is(err, ErrCorruptStore) {
		t.Fatalf("want ErrCorruptStore, got %v", err)
	}
}

func TestCrashBetweenSnapshotAndCommit(t *testing.T) {
	dir := t.TempDir()
	commitDeploy(t, dir, nil, []byte("m1"))

	// Crash on the manifest swap (second WriteFile): the snapshot for v2 is
	// durable but never referenced.
	hooked := atomicio.NewFS(&nthWriteHook{fireAt: 2, outcome: atomicio.CrashBefore})
	s, err := Open(dir, hooked)
	if err != nil {
		t.Fatal(err)
	}
	name, sum, err := s.PutSnapshot(2, []byte("m2"))
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if _, ok := recover().(*atomicio.Crash); !ok {
				t.Fatal("expected injected crash")
			}
		}()
		s.Commit(Manifest{Version: 2, Parent: 1, Next: 3, Event: EventPromote,
			Snapshot: name, SnapshotSum: sum})
	}()

	// Recovery: the old manifest still rules; the orphan is collected.
	s2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Manifest().Version != 1 {
		t.Fatalf("recovered version = %d, want 1", s2.Manifest().Version)
	}
	if _, err := os.Stat(filepath.Join(dir, modelsDir, snapshotName(2))); !os.IsNotExist(err) {
		t.Fatal("uncommitted snapshot should be GC'd on reopen")
	}
}

// nthWriteHook fires one outcome at the Nth WriteFile.
type nthWriteHook struct {
	fireAt  int
	outcome atomicio.Outcome
	seen    int
}

func (h *nthWriteHook) Decide(op atomicio.Op, path string) atomicio.Decision {
	if op != atomicio.OpWriteFile {
		return atomicio.Decision{}
	}
	h.seen++
	if h.seen == h.fireAt {
		return atomicio.Decision{Outcome: h.outcome, KeepBytes: -1}
	}
	return atomicio.Decision{}
}

func TestStoreTelemetry(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	s, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Instrument(reg)
	name, sum, _ := s.PutSnapshot(1, []byte("m"))
	if err := s.Commit(Manifest{Version: 1, Next: 2, Event: EventDeploy, Snapshot: name, SnapshotSum: sum}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("durable.checkpoints").Value(); got != 1 {
		t.Fatalf("durable.checkpoints = %d, want 1", got)
	}
	if got := reg.Gauge("durable.version").Value(); got != 1 {
		t.Fatalf("durable.version = %g, want 1", got)
	}
}

func TestFleetStoreGrantsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fsStore, err := OpenFleet(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	table := GrantTable{Budget: 100, Grants: []GrantEntry{
		{Name: "zeta", Granted: 40},
		{Name: "alpha", Granted: 60},
	}}
	if err := fsStore.SaveGrants(table); err != nil {
		t.Fatal(err)
	}
	got, err := fsStore.LoadGrants()
	if err != nil {
		t.Fatal(err)
	}
	if got.Budget != 100 || len(got.Grants) != 2 {
		t.Fatalf("grants = %+v", got)
	}
	// Sorted by name on disk.
	if got.Grants[0].Name != "alpha" || got.Grants[1].Name != "zeta" {
		t.Fatalf("grants not sorted: %+v", got.Grants)
	}

	// Missing table is nil, not an error; corrupt table is ErrCorruptStore.
	empty, err := OpenFleet(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if tab, err := empty.LoadGrants(); tab != nil || err != nil {
		t.Fatalf("fresh fleet store: table=%v err=%v", tab, err)
	}
	path := filepath.Join(dir, grantsFile)
	data, _ := os.ReadFile(path)
	data[len(data)-2] ^= 0x40
	os.WriteFile(path, data, 0o644)
	if _, err := fsStore.LoadGrants(); !errors.Is(err, ErrCorruptStore) {
		t.Fatalf("corrupt grants: want ErrCorruptStore, got %v", err)
	}
}

func TestFsckCleanAndRendersDeterministically(t *testing.T) {
	dir := t.TempDir()
	s := commitDeploy(t, dir, nil, []byte("model"))
	j, err := s.Journal()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	rep := Fsck(dir)
	if !rep.OK() {
		t.Fatalf("fsck problems: %+v", rep.Problems)
	}
	if rep.JournalRecords != 3 || rep.TornTail {
		t.Fatalf("journal: %+v", rep)
	}
	var a, b bytes.Buffer
	rep.Render(&a)
	Fsck(dir).Render(&b)
	if a.String() != b.String() {
		t.Fatalf("fsck output not deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), "fsck ok") {
		t.Fatalf("render: %s", a.String())
	}
}
