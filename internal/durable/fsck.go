package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"loam/internal/atomicio"
)

// Problem is one integrity violation fsck found. Path is store-relative so
// reports are deterministic across machines.
type Problem struct {
	Path   string `json:"path"`
	Detail string `json:"detail"`
}

// Report is the result of an offline store check. A torn journal tail is
// reported separately from Problems: it is the normal residue of a crash
// (Open repairs it), not corruption.
type Report struct {
	Manifest *Manifest `json:"manifest,omitempty"`
	// JournalSegments / JournalRecords count the clean journal contents.
	JournalSegments int `json:"journalSegments"`
	JournalRecords  int `json:"journalRecords"`
	// TornTail reports a repairable partial frame at the journal's end.
	TornTail bool `json:"tornTail"`
	// Orphans are model files no manifest references (repairable by GC).
	Orphans []string `json:"orphans,omitempty"`
	// GrantTenants counts persisted grants (-1 when no table exists).
	GrantTenants int       `json:"grantTenants"`
	Problems     []Problem `json:"problems,omitempty"`
}

// OK reports whether the store is consistent (torn tails and orphans are
// repairable and do not fail the check).
func (r *Report) OK() bool { return len(r.Problems) == 0 }

// Render writes the deterministic human-readable report.
func (r *Report) Render(w io.Writer) {
	if r.OK() {
		fmt.Fprintln(w, "fsck ok")
	} else {
		fmt.Fprintln(w, "fsck CORRUPT")
	}
	if r.Manifest != nil {
		m := r.Manifest
		fmt.Fprintf(w, "manifest seq=%d version=%d parent=%d next=%d event=%s probation=%d\n",
			m.Seq, m.Version, m.Parent, m.Next, m.Event, m.Probation)
		fmt.Fprintf(w, "snapshot %s sum=%016x\n", m.Snapshot, m.SnapshotSum)
		if m.PrevSnapshot != "" {
			fmt.Fprintf(w, "rollback %s sum=%016x (version %d)\n", m.PrevSnapshot, m.PrevSum, m.PrevVersion)
		}
	}
	fmt.Fprintf(w, "journal segments=%d records=%d tornTail=%v\n",
		r.JournalSegments, r.JournalRecords, r.TornTail)
	for _, o := range r.Orphans {
		fmt.Fprintf(w, "orphan %s\n", o)
	}
	if r.GrantTenants >= 0 {
		fmt.Fprintf(w, "grants tenants=%d\n", r.GrantTenants)
	}
	for _, p := range r.Problems {
		fmt.Fprintf(w, "problem %s: %s\n", p.Path, p.Detail)
	}
}

// Fsck verifies a store directory offline without mutating it: the manifest
// frame, every referenced snapshot's checksum, journal segment integrity,
// and the grant table if present. It never repairs; Open does that.
func Fsck(dir string) *Report {
	r := &Report{GrantTenants: -1}
	problem := func(path, format string, args ...any) {
		r.Problems = append(r.Problems, Problem{Path: path, Detail: fmt.Sprintf(format, args...)})
	}

	// A grants file alone marks a fleet store, which has no manifest.
	_, statGrantsErr := os.Stat(filepath.Join(dir, grantsFile))
	fleetOnly := statGrantsErr == nil

	man, err := readManifest(dir)
	if err != nil {
		problem(manifestFile, "%v", errors.Unwrap(err))
	} else if man == nil && !fleetOnly {
		problem(manifestFile, "missing: store has no recovery point")
	}
	r.Manifest = man

	// Snapshots: every referenced file must exist and match its checksum;
	// unreferenced files are repairable orphans.
	referenced := map[string]uint64{}
	if man != nil {
		referenced[man.Snapshot] = man.SnapshotSum
		if man.PrevSnapshot != "" {
			referenced[man.PrevSnapshot] = man.PrevSum
		}
	}
	models := filepath.Join(dir, modelsDir)
	present := map[string]bool{}
	if ents, err := os.ReadDir(models); err == nil {
		for _, e := range ents {
			present[e.Name()] = true
			if _, ok := referenced[e.Name()]; !ok {
				r.Orphans = append(r.Orphans, e.Name())
			}
		}
	} else if man != nil {
		problem(modelsDir, "unreadable: %v", err)
	}
	sort.Strings(r.Orphans)
	names := make([]string, 0, len(referenced))
	for name := range referenced {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rel := filepath.Join(modelsDir, name)
		if !present[name] {
			problem(rel, "referenced by manifest but missing")
			continue
		}
		data, err := os.ReadFile(filepath.Join(models, name))
		if err != nil {
			problem(rel, "unreadable: %v", err)
			continue
		}
		if got := atomicio.Checksum(data); got != referenced[name] {
			problem(rel, "checksum %016x, manifest says %016x", got, referenced[name])
		}
	}

	// Journal: every segment must scan cleanly except a torn tail on the
	// last one.
	jdir := filepath.Join(dir, journalDir)
	var segs []int
	if ents, err := os.ReadDir(jdir); err == nil {
		for _, e := range ents {
			var n int
			if _, err := fmt.Sscanf(e.Name(), "seg-%06d.log", &n); err == nil {
				segs = append(segs, n)
			}
		}
	}
	sort.Ints(segs)
	r.JournalSegments = len(segs)
	for i, seq := range segs {
		rel := filepath.Join(journalDir, segmentName(seq))
		data, err := os.ReadFile(filepath.Join(jdir, segmentName(seq)))
		if err != nil {
			problem(rel, "unreadable: %v", err)
			continue
		}
		frames, _, tailErr := atomicio.ScanFrames(data)
		r.JournalRecords += len(frames)
		if tailErr == nil {
			continue
		}
		if i == len(segs)-1 && errors.Is(tailErr, atomicio.ErrTruncatedFrame) {
			r.TornTail = true
		} else {
			problem(rel, "%v", tailErr)
		}
	}

	// Grants, when the directory doubles as a fleet store.
	if data, err := os.ReadFile(filepath.Join(dir, grantsFile)); err == nil {
		payload, rest, err := atomicio.DecodeFrame(data)
		if err != nil || len(rest) != 0 {
			problem(grantsFile, "frame: %v", err)
		} else {
			var t GrantTable
			if err := json.Unmarshal(payload, &t); err != nil {
				problem(grantsFile, "payload: %v", err)
			} else {
				r.GrantTenants = len(t.Grants)
			}
		}
	}
	return r
}
