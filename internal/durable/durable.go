// Package durable is the crash-safe persistence layer for the serving
// stack's continual-learning state: model checkpoints with lineage, the
// feedback journal the drift detector resumes from, and the fleet's
// cache-grant table. It stores opaque snapshot bytes — serialization belongs
// to the predictor — and guarantees exactly one thing: after a crash at ANY
// write point, Open lands on the last committed manifest and every byte that
// manifest references verifies against its recorded checksum.
//
// On-disk layout (all writes go through internal/atomicio):
//
//	<dir>/MANIFEST          one checksummed frame: the JSON Manifest
//	<dir>/models/v%06d.snap predictor snapshots (self-checksummed, v2 framed)
//	<dir>/journal/seg-%06d.log  feedback journal segments (frames)
//	<dir>/grants            one checksummed frame: the JSON GrantTable
//
// The write-point ordering that makes the manifest the recovery point:
// snapshot file first (atomic), then MANIFEST (atomic swap), then GC of
// unreferenced snapshots. A crash between any two steps leaves either the
// old manifest with the old snapshot intact (plus a harmless orphan the
// next GC collects) or the new manifest with its snapshot already durable.
// Journal appends are fsynced frames; a crash mid-append leaves a torn tail
// that Open truncates back to the last clean frame — an acknowledged record
// is never lost, a torn one is never half-replayed.
package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"loam/internal/atomicio"
	"loam/internal/telemetry"
)

// Checkpoint event names recorded in the manifest. They mirror the
// lifecycle transitions (DESIGN.md "Model lifecycle contract"): every event
// that changes which model serves, or its rollback insurance, commits one.
const (
	// EventDeploy is the initial checkpoint of a fresh deployment.
	EventDeploy = "deploy"
	// EventPromote commits a candidate that passed shadow evaluation; the
	// manifest keeps the previous snapshot for probation rollback.
	EventPromote = "promote"
	// EventRollback reinstates the previous snapshot after a probation
	// failure; the manifest's current snapshot becomes the old prev.
	EventRollback = "rollback"
	// EventProbationClear drops the rollback insurance once a promoted
	// model survives probation.
	EventProbationClear = "probation-clear"
)

// Manifest is the durable recovery point: which model version serves, its
// lineage, the rollback snapshot (while probation lasts), and the retrain
// counter. The manifest file is one checksummed frame, swapped atomically —
// recovery never sees a partial manifest.
type Manifest struct {
	// Seq increments on every commit; fsck and tests use it to order
	// recovery points.
	Seq uint64 `json:"seq"`
	// Version is the model version the deployment serves.
	Version int `json:"version"`
	// Parent is Version's lineage parent (0 for the initial deploy).
	Parent int `json:"parent"`
	// Next is the lifecycle's next-candidate counter; persisting it keeps
	// retrain seeds (base + version) monotone across restarts.
	Next int `json:"next"`
	// Event is the lifecycle transition that committed this manifest.
	Event string `json:"event"`
	// Snapshot names the serving model file under models/, with its
	// whole-file FNV-64a checksum.
	Snapshot    string `json:"snapshot"`
	SnapshotSum uint64 `json:"snapshotSum"`
	// Probation is the remaining probation budget; a restore with
	// Probation > 0 must re-arm rollback.
	Probation int `json:"probation"`
	// PrevVersion/PrevSnapshot/PrevSum carry the rollback insurance while
	// Probation > 0; empty otherwise.
	PrevVersion  int    `json:"prevVersion,omitempty"`
	PrevSnapshot string `json:"prevSnapshot,omitempty"`
	PrevSum      uint64 `json:"prevSum,omitempty"`
}

// ErrCorruptStore marks a store whose on-disk state fails verification: an
// unreadable manifest, a referenced snapshot that is missing or fails its
// checksum, or a journal segment corrupted before its tail. Open and fsck
// return it; a torn journal tail is NOT corruption (it is the expected
// residue of a crash and is repaired silently).
var ErrCorruptStore = errors.New("durable: corrupt store")

const (
	manifestFile = "MANIFEST"
	modelsDir    = "models"
	journalDir   = "journal"
	grantsFile   = "grants"
)

// storeTelemetry holds the durable layer's instruments; nil fields are
// no-ops (telemetry.Counter methods are nil-safe).
type storeTelemetry struct {
	checkpoints      *telemetry.Counter
	restores         *telemetry.Counter
	gcRemoved        *telemetry.Counter
	journalAppends   *telemetry.Counter
	journalReplayed  *telemetry.Counter
	journalTruncated *telemetry.Counter
	journalResets    *telemetry.Counter
	errors           *telemetry.Counter
	version          *telemetry.Gauge
}

// Store is one deployment's durable state rooted at a directory. Methods
// are not safe for concurrent use; the lifecycle serializes them under its
// own mutex.
type Store struct {
	dir string
	fs  *atomicio.FS
	man *Manifest
	tel storeTelemetry
}

// Open roots a store at dir, creating the layout on first use. If a
// manifest exists it is decoded and verified against its snapshot files —
// an inconsistent store fails with ErrCorruptStore rather than serving a
// model that doesn't match its lineage. Orphan snapshots and stray temp
// files from interrupted checkpoints are collected.
func Open(dir string, fs *atomicio.FS) (*Store, error) {
	if fs == nil {
		fs = atomicio.Default
	}
	for _, d := range []string{dir, filepath.Join(dir, modelsDir), filepath.Join(dir, journalDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("durable: mkdir %s: %w", d, err)
		}
	}
	s := &Store{dir: dir, fs: fs}
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	s.man = man
	if man != nil {
		if _, err := s.ReadSnapshot(man.Snapshot, man.SnapshotSum); err != nil {
			return nil, fmt.Errorf("serving snapshot: %w", err)
		}
		if man.PrevSnapshot != "" {
			if _, err := s.ReadSnapshot(man.PrevSnapshot, man.PrevSum); err != nil {
				return nil, fmt.Errorf("rollback snapshot: %w", err)
			}
		}
	}
	if err := s.gc(); err != nil {
		return nil, err
	}
	return s, nil
}

// readManifest decodes dir's manifest frame; a missing file returns
// (nil, nil) — a fresh store.
func readManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("durable: read manifest: %w", err)
	}
	payload, rest, err := atomicio.DecodeFrame(data)
	if err != nil || len(rest) != 0 {
		return nil, fmt.Errorf("%w: manifest frame: %v", ErrCorruptStore, err)
	}
	var man Manifest
	if err := json.Unmarshal(payload, &man); err != nil {
		return nil, fmt.Errorf("%w: manifest payload: %v", ErrCorruptStore, err)
	}
	if man.Snapshot == "" {
		return nil, fmt.Errorf("%w: manifest references no snapshot", ErrCorruptStore)
	}
	return &man, nil
}

// Instrument wires the store's durable.* metrics into reg.
func (s *Store) Instrument(reg *telemetry.Registry) {
	s.tel = storeTelemetry{
		checkpoints:      reg.Counter("durable.checkpoints"),
		restores:         reg.Counter("durable.restores"),
		gcRemoved:        reg.Counter("durable.gc.removed"),
		journalAppends:   reg.Counter("durable.journal.appends"),
		journalReplayed:  reg.Counter("durable.journal.replayed"),
		journalTruncated: reg.Counter("durable.journal.truncated"),
		journalResets:    reg.Counter("durable.journal.resets"),
		errors:           reg.Counter("durable.errors"),
		version:          reg.Gauge("durable.version"),
	}
	if s.man != nil {
		s.tel.version.Set(float64(s.man.Version))
	}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// NoteRestore records a successful warm restore from this store in the
// durable.restores counter.
func (s *Store) NoteRestore() { s.tel.restores.Inc() }

// Manifest returns the last committed manifest (nil for a fresh store). The
// caller must not mutate it.
func (s *Store) Manifest() *Manifest { return s.man }

// snapshotName returns the models/ filename for a version.
func snapshotName(version int) string {
	return fmt.Sprintf("v%06d.snap", version)
}

// PutSnapshot writes a model snapshot for version and returns the manifest
// reference (relative name + whole-file checksum). The snapshot is durable
// once PutSnapshot returns, but not live until a manifest referencing it
// commits — a crash in between leaves an orphan, not a corrupt store.
func (s *Store) PutSnapshot(version int, data []byte) (name string, sum uint64, err error) {
	name = snapshotName(version)
	if err := s.fs.WriteFile(filepath.Join(s.dir, modelsDir, name), data); err != nil {
		s.tel.errors.Inc()
		return "", 0, fmt.Errorf("durable: snapshot %s: %w", name, err)
	}
	return name, atomicio.Checksum(data), nil
}

// ReadSnapshot returns a snapshot's bytes, verifying the whole-file
// checksum the manifest recorded. A mismatch is ErrCorruptStore.
func (s *Store) ReadSnapshot(name string, sum uint64) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, modelsDir, name))
	if err != nil {
		return nil, fmt.Errorf("%w: snapshot %s: %v", ErrCorruptStore, name, err)
	}
	if got := atomicio.Checksum(data); got != sum {
		return nil, fmt.Errorf("%w: snapshot %s checksum %x, manifest says %x", ErrCorruptStore, name, got, sum)
	}
	return data, nil
}

// Commit atomically swaps the manifest to m (Seq is assigned here), making
// it the recovery point, then collects snapshots the new manifest no longer
// references.
func (s *Store) Commit(m Manifest) error {
	if s.man != nil {
		m.Seq = s.man.Seq + 1
	} else {
		m.Seq = 1
	}
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("durable: marshal manifest: %w", err)
	}
	if err := s.fs.WriteFile(filepath.Join(s.dir, manifestFile), atomicio.EncodeFrame(payload)); err != nil {
		s.tel.errors.Inc()
		return fmt.Errorf("durable: commit manifest: %w", err)
	}
	s.man = &m
	s.tel.checkpoints.Inc()
	s.tel.version.Set(float64(m.Version))
	return s.gc()
}

// gc removes model files the manifest doesn't reference, plus stray temp
// files from interrupted atomic writes. Idempotent across crash/restart.
func (s *Store) gc() error {
	keep := map[string]bool{}
	if s.man != nil {
		keep[s.man.Snapshot] = true
		if s.man.PrevSnapshot != "" {
			keep[s.man.PrevSnapshot] = true
		}
	}
	dir := filepath.Join(s.dir, modelsDir)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("durable: list models: %w", err)
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		if keep[name] {
			continue
		}
		if err := s.fs.Remove(filepath.Join(dir, name)); err != nil {
			s.tel.errors.Inc()
			return fmt.Errorf("durable: gc: %w", err)
		}
		if !strings.HasSuffix(name, ".tmp") {
			s.tel.gcRemoved.Inc()
		}
	}
	return nil
}
