package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"loam/internal/atomicio"
)

// openJournal builds a fresh store in dir and returns its journal.
func openJournal(t *testing.T, dir string, fs *atomicio.FS) *Journal {
	t.Helper()
	s, err := Open(dir, fs)
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Journal()
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// replayAll collects every replayed payload as strings.
func replayAll(t *testing.T, j *Journal) []string {
	t.Helper()
	var got []string
	if err := j.Replay(func(p []byte) error {
		got = append(got, string(p))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestJournalAppendReplay(t *testing.T) {
	dir := t.TempDir()
	j := openJournal(t, dir, nil)
	want := []string{"a", "bb", "ccc"}
	for _, r := range want {
		if err := j.Append([]byte(r)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	j2 := openJournal(t, dir, nil)
	defer j2.Close()
	got := replayAll(t, j2)
	if len(got) != len(want) {
		t.Fatalf("replayed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replayed %v, want %v", got, want)
		}
	}
}

func TestJournalTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	j := openJournal(t, dir, nil)
	if err := j.Append([]byte("durable-record")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Crash mid-append: a torn frame lands at the tail.
	hook := &nthOpHook{op: atomicio.OpAppend, fireAt: 1,
		decision: atomicio.Decision{Outcome: atomicio.CrashTorn, KeepBytes: 5}}
	jt := openJournal(t, dir, atomicio.NewFS(hook))
	func() {
		defer func() {
			if _, ok := recover().(*atomicio.Crash); !ok {
				t.Fatal("expected injected crash")
			}
		}()
		jt.Append([]byte("torn-record"))
	}()

	// Reopen repairs the tail; the acknowledged record survives, the torn
	// one is gone, and new appends land cleanly after it.
	j2 := openJournal(t, dir, nil)
	got := replayAll(t, j2)
	if len(got) != 1 || got[0] != "durable-record" {
		t.Fatalf("after repair: %v", got)
	}
	if err := j2.Append([]byte("post-crash")); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3 := openJournal(t, dir, nil)
	defer j3.Close()
	got = replayAll(t, j3)
	if len(got) != 2 || got[1] != "post-crash" {
		t.Fatalf("after repair+append: %v", got)
	}
}

func TestJournalRotationBoundsSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Journal()
	if err != nil {
		t.Fatal(err)
	}
	j.maxSegment = 64 // force frequent rotation
	j.keep = 2
	for i := 0; i < 50; i++ {
		if err := j.Append([]byte(fmt.Sprintf("record-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	segs, err := j.segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) > 3 { // keep closed segments + the open one
		t.Fatalf("rotation kept %d segments, want <= 3", len(segs))
	}
	// Replay yields a contiguous suffix ending at the last record.
	j2 := openJournal(t, dir, nil)
	defer j2.Close()
	got := replayAll(t, j2)
	if len(got) == 0 || got[len(got)-1] != "record-49" {
		t.Fatalf("replay after rotation: %v", got)
	}
	for i := 1; i < len(got); i++ {
		var a, b int
		fmt.Sscanf(got[i-1], "record-%d", &a)
		fmt.Sscanf(got[i], "record-%d", &b)
		if b != a+1 {
			t.Fatalf("replay not contiguous: %v", got)
		}
	}
}

func TestJournalReset(t *testing.T) {
	dir := t.TempDir()
	j := openJournal(t, dir, nil)
	j.Append([]byte("old"))
	if err := j.Reset(); err != nil {
		t.Fatal(err)
	}
	j.Append([]byte("new"))
	j.Close()
	j2 := openJournal(t, dir, nil)
	defer j2.Close()
	got := replayAll(t, j2)
	if len(got) != 1 || got[0] != "new" {
		t.Fatalf("after reset: %v", got)
	}
}

func TestJournalMidFileCorruptionIsFatal(t *testing.T) {
	dir := t.TempDir()
	j := openJournal(t, dir, nil)
	j.Append([]byte("one"))
	j.Append([]byte("two"))
	j.Close()
	// Flip a bit in the FIRST record: not a torn tail, real corruption.
	path := filepath.Join(dir, journalDir, segmentName(0))
	data, _ := os.ReadFile(path)
	data[20] ^= 0x08 // inside frame 1's payload region
	os.WriteFile(path, data, 0o644)

	s, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Journal()
	if err == nil {
		// Open tolerates it (scan stops at the bad frame and truncates),
		// but replay of an interior corruption must fail loudly if the
		// scan stopped on a checksum error rather than a short tail.
		err = j2.Replay(func([]byte) error { return nil })
		j2.Close()
	}
	if err == nil {
		t.Skip("corruption landed in a spot ScanFrames reads as a clean tail")
	}
	if !errors.Is(err, ErrCorruptStore) && !errors.Is(err, atomicio.ErrCorruptFrame) {
		t.Fatalf("want corruption error, got %v", err)
	}
}

// nthOpHook fires one decision at the Nth op of a kind.
type nthOpHook struct {
	op       atomicio.Op
	fireAt   int
	decision atomicio.Decision
	seen     int
}

func (h *nthOpHook) Decide(op atomicio.Op, path string) atomicio.Decision {
	if op != h.op {
		return atomicio.Decision{}
	}
	h.seen++
	if h.seen == h.fireAt {
		return h.decision
	}
	return atomicio.Decision{}
}
