package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"loam/internal/atomicio"
)

// Journal is the append-only feedback log: one checksummed frame per
// record, fsynced on append, split into numbered segments. The drift
// detector's observation window is rebuilt by replaying it after a restart.
//
// Durability semantics: a record is durable when Append returns. A crash
// mid-append leaves a torn tail on the last segment; OpenJournal truncates
// it back to the last clean frame, so replay sees exactly the acknowledged
// prefix. The lifecycle resets the journal at every checkpoint event
// (promote/rollback reset the drift detector, so the journal's window
// starts over with it) — the journal never outlives its manifest.
type Journal struct {
	dir string
	fs  *atomicio.FS
	tel *storeTelemetry
	seq int
	app *atomicio.Appender
	// maxSegment rotates the segment once its size passes this many bytes;
	// keep bounds how many closed segments survive rotation.
	maxSegment int64
	keep       int
}

const (
	defaultMaxSegment = 64 << 10
	defaultKeep       = 4
)

// segmentName returns the journal filename for segment seq.
func segmentName(seq int) string { return fmt.Sprintf("seg-%06d.log", seq) }

// Journal opens the store's feedback journal, repairing any torn tail left
// by a crash. The returned journal is positioned to append after the last
// clean record.
func (s *Store) Journal() (*Journal, error) {
	j := &Journal{
		dir:        filepath.Join(s.dir, journalDir),
		fs:         s.fs,
		tel:        &s.tel,
		maxSegment: defaultMaxSegment,
		keep:       defaultKeep,
	}
	segs, err := j.segments()
	if err != nil {
		return nil, err
	}
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		if err := j.repairTail(last); err != nil {
			return nil, err
		}
		j.seq = last
	}
	app, err := s.fs.OpenAppend(filepath.Join(j.dir, segmentName(j.seq)))
	if err != nil {
		return nil, err
	}
	j.app = app
	return j, nil
}

// segments lists the journal's segment numbers in ascending order.
func (j *Journal) segments() ([]int, error) {
	ents, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, fmt.Errorf("durable: list journal: %w", err)
	}
	var segs []int
	for _, e := range ents {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "seg-%06d.log", &n); err == nil {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// repairTail truncates segment seq back to its last clean frame. Only the
// final segment may carry a torn tail; corruption before the tail of an
// earlier segment is detected by Replay as ErrCorruptStore.
func (j *Journal) repairTail(seq int) error {
	path := filepath.Join(j.dir, segmentName(seq))
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("durable: read journal %s: %w", segmentName(seq), err)
	}
	_, clean, tailErr := atomicio.ScanFrames(data)
	if tailErr == nil {
		return nil
	}
	// Only a truncated trailing frame is crash residue; a checksum failure
	// means a complete record rotted on disk, and truncating would silently
	// destroy it plus everything after it.
	if !errors.Is(tailErr, atomicio.ErrTruncatedFrame) {
		return fmt.Errorf("%w: journal %s: %v", ErrCorruptStore, segmentName(seq), tailErr)
	}
	if err := j.fs.Truncate(path, int64(clean)); err != nil {
		j.tel.errors.Inc()
		return err
	}
	j.tel.journalTruncated.Inc()
	return nil
}

// Append writes one record as a checksummed, fsynced frame, rotating the
// segment when it passes the size threshold.
func (j *Journal) Append(payload []byte) error {
	if j.app.Size() >= j.maxSegment {
		if err := j.rotate(); err != nil {
			return err
		}
	}
	if err := j.app.Append(payload); err != nil {
		j.tel.errors.Inc()
		return err
	}
	j.tel.journalAppends.Inc()
	return nil
}

// rotate closes the current segment, opens the next, and drops closed
// segments beyond the retention bound.
func (j *Journal) rotate() error {
	if err := j.app.Close(); err != nil {
		return err
	}
	j.seq++
	app, err := j.fs.OpenAppend(filepath.Join(j.dir, segmentName(j.seq)))
	if err != nil {
		return err
	}
	j.app = app
	segs, err := j.segments()
	if err != nil {
		return err
	}
	for len(segs) > j.keep {
		if err := j.fs.Remove(filepath.Join(j.dir, segmentName(segs[0]))); err != nil {
			j.tel.errors.Inc()
			return err
		}
		segs = segs[1:]
	}
	return nil
}

// Replay streams every clean record, oldest first, through fn. A torn tail
// on the last segment ends replay silently (OpenJournal already truncated
// it for appends); corruption anywhere else is ErrCorruptStore.
func (j *Journal) Replay(fn func(payload []byte) error) error {
	segs, err := j.segments()
	if err != nil {
		return err
	}
	for i, seq := range segs {
		data, err := os.ReadFile(filepath.Join(j.dir, segmentName(seq)))
		if err != nil {
			return fmt.Errorf("durable: read journal %s: %w", segmentName(seq), err)
		}
		frames, _, tailErr := atomicio.ScanFrames(data)
		if tailErr != nil {
			if i != len(segs)-1 || !errors.Is(tailErr, atomicio.ErrTruncatedFrame) {
				return fmt.Errorf("%w: journal %s: %v", ErrCorruptStore, segmentName(seq), tailErr)
			}
		}
		for _, f := range frames {
			if err := fn(f); err != nil {
				return err
			}
			j.tel.journalReplayed.Inc()
		}
	}
	return nil
}

// Reset discards every record and starts a fresh segment — the lifecycle
// calls it when the drift detector's window resets at a checkpoint event.
func (j *Journal) Reset() error {
	if err := j.app.Close(); err != nil {
		return err
	}
	segs, err := j.segments()
	if err != nil {
		return err
	}
	for _, seq := range segs {
		if err := j.fs.Remove(filepath.Join(j.dir, segmentName(seq))); err != nil {
			j.tel.errors.Inc()
			return err
		}
	}
	j.seq++
	app, err := j.fs.OpenAppend(filepath.Join(j.dir, segmentName(j.seq)))
	if err != nil {
		return err
	}
	j.app = app
	j.tel.journalResets.Inc()
	return nil
}

// Close closes the open segment.
func (j *Journal) Close() error { return j.app.Close() }
