// Package floatsafe provides NaN-explicit comparisons for cost and estimate
// values. The predictor can emit NaN estimates (degenerate normalization,
// untrained corners), and a raw `<` between estimates silently makes the NaN
// operand win or lose a plan choice — every comparison involving NaN is
// false, so `cand < best` keeps a NaN incumbent forever while
// `best = NaN` at initialization can never be displaced.
//
// The nansafety analyzer in internal/analysis flags raw cost comparisons and
// points here; these helpers make the NaN policy explicit at every call
// site: NaN never wins a selection, NaN sorts last, and NaN fails
// acceptance gates closed.
package floatsafe

import "math"

// Less reports whether a beats b in a minimization: true iff a is a real
// number and either b is NaN or a < b. A NaN challenger never wins; a NaN
// incumbent always loses.
func Less(a, b float64) bool {
	if math.IsNaN(a) {
		return false
	}
	return math.IsNaN(b) || a < b
}

// LessEq is a NaN-closed acceptance check: false if either operand is NaN,
// else a <= b. Gates that compare a measured cost against a budget fail
// closed on NaN instead of silently passing (NaN <= x is false) or being
// reasoned about implicitly.
func LessEq(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return a <= b
}

// SortLess is a deterministic strict weak ordering for sort comparators:
// real numbers ascend, NaNs sort last. Feeding raw `<` with NaN to
// sort.Slice violates transitivity and yields an order that depends on the
// input permutation.
func SortLess(a, b float64) bool {
	if math.IsNaN(a) {
		return false
	}
	if math.IsNaN(b) {
		return true
	}
	return a < b
}

// ArgMin returns the index of the smallest non-NaN value, preferring the
// earliest index on ties (matching the predictor's vetted sequential
// argmin), or -1 when every value is NaN or the slice is empty.
func ArgMin(xs []float64) int {
	best := -1
	for i, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		if best < 0 || x < xs[best] {
			best = i
		}
	}
	return best
}
