package floatsafe_test

import (
	"math"
	"sort"
	"testing"

	"loam/internal/floatsafe"
)

var nan = math.NaN()

func TestLess(t *testing.T) {
	tests := []struct {
		a, b float64
		want bool
	}{
		{1, 2, true},
		{2, 1, false},
		{1, 1, false},
		{nan, 1, false}, // NaN challenger never wins
		{1, nan, true},  // NaN incumbent always loses
		{nan, nan, false},
	}
	for _, tc := range tests {
		if got := floatsafe.Less(tc.a, tc.b); got != tc.want {
			t.Errorf("Less(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestLessEqFailsClosedOnNaN(t *testing.T) {
	tests := []struct {
		a, b float64
		want bool
	}{
		{1, 2, true},
		{2, 2, true},
		{3, 2, false},
		{nan, 2, false},
		{2, nan, false},
		{nan, nan, false},
	}
	for _, tc := range tests {
		if got := floatsafe.LessEq(tc.a, tc.b); got != tc.want {
			t.Errorf("LessEq(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestSortLessOrdersNaNLast(t *testing.T) {
	xs := []float64{3, nan, 1, nan, 2}
	sort.Slice(xs, func(i, j int) bool { return floatsafe.SortLess(xs[i], xs[j]) })
	want := []float64{1, 2, 3}
	for i, w := range want {
		if xs[i] != w {
			t.Fatalf("sorted = %v, want reals ascending then NaNs", xs)
		}
	}
	if !math.IsNaN(xs[3]) || !math.IsNaN(xs[4]) {
		t.Fatalf("sorted = %v, want NaNs at the tail", xs)
	}
}

func TestArgMin(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want int
	}{
		{"plain minimum", []float64{3, 1, 2}, 1},
		{"earliest index on ties", []float64{2, 1, 1}, 1},
		{"skips NaN", []float64{nan, 5, 4}, 2},
		{"all NaN", []float64{nan, nan}, -1},
		{"empty", nil, -1},
		{"NaN incumbent cannot block", []float64{nan, 7}, 1},
	}
	for _, tc := range tests {
		if got := floatsafe.ArgMin(tc.xs); got != tc.want {
			t.Errorf("%s: ArgMin(%v) = %d, want %d", tc.name, tc.xs, got, tc.want)
		}
	}
}
