package xgb

import (
	"math"
	"testing"
	"testing/quick"

	"loam/internal/simrand"
)

func TestFitConstant(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{7, 7, 7, 7}
	m := Train(DefaultConfig(), x, y)
	for _, xi := range x {
		if got := m.Predict(xi); math.Abs(got-7) > 1e-6 {
			t.Fatalf("constant fit predicts %g", got)
		}
	}
}

func TestFitStepFunction(t *testing.T) {
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		v := float64(i) / 200
		x = append(x, []float64{v})
		if v < 0.5 {
			y = append(y, 1)
		} else {
			y = append(y, 5)
		}
	}
	m := Train(DefaultConfig(), x, y)
	if got := m.Predict([]float64{0.2}); math.Abs(got-1) > 0.2 {
		t.Fatalf("left of step: %g", got)
	}
	if got := m.Predict([]float64{0.8}); math.Abs(got-5) > 0.2 {
		t.Fatalf("right of step: %g", got)
	}
}

func TestFitBeatsBaseline(t *testing.T) {
	rng := simrand.New(4)
	var x [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		a, b := rng.Uniform(-1, 1), rng.Uniform(-1, 1)
		x = append(x, []float64{a, b, rng.Uniform(-1, 1)})
		y = append(y, 2*a-b+a*b+rng.Normal(0, 0.05))
	}
	m := Train(DefaultConfig(), x, y)
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	var mseModel, mseBase float64
	for i := range x {
		d := m.Predict(x[i]) - y[i]
		mseModel += d * d
		b := mean - y[i]
		mseBase += b * b
	}
	if mseModel > 0.2*mseBase {
		t.Fatalf("booster barely beats mean baseline: %g vs %g", mseModel, mseBase)
	}
}

func TestIgnoresIrrelevantFeature(t *testing.T) {
	rng := simrand.New(5)
	var x [][]float64
	var y []float64
	for i := 0; i < 300; i++ {
		a := rng.Uniform(0, 1)
		noise := rng.Uniform(0, 1)
		x = append(x, []float64{noise, a})
		y = append(y, 3*a)
	}
	m := Train(DefaultConfig(), x, y)
	// Predictions must track feature 1, not feature 0.
	lo := m.Predict([]float64{0.5, 0.1})
	hi := m.Predict([]float64{0.5, 0.9})
	if hi-lo < 1.5 {
		t.Fatalf("model failed to find the relevant feature: %g vs %g", lo, hi)
	}
}

func TestEmptyTrainingSet(t *testing.T) {
	m := Train(DefaultConfig(), nil, nil)
	if got := m.Predict([]float64{1, 2}); got != 0 {
		t.Fatalf("empty model predicts %g", got)
	}
	if m.NumTrees() != 0 {
		t.Fatal("empty model should have no trees")
	}
}

func TestPredictionsFinite(t *testing.T) {
	rng := simrand.New(6)
	var x [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		x = append(x, []float64{rng.Normal(0, 10), rng.Normal(0, 10)})
		y = append(y, rng.Normal(0, 100))
	}
	m := Train(DefaultConfig(), x, y)
	if err := quick.Check(func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		p := m.Predict([]float64{a, b})
		return !math.IsNaN(p) && !math.IsInf(p, 0)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPredictShortFeatureVector(t *testing.T) {
	x := [][]float64{{1, 2}, {3, 4}, {0, 1}, {5, 2}}
	y := []float64{1, 2, 3, 4}
	m := Train(DefaultConfig(), x, y)
	// Missing features read as 0 rather than panicking.
	if p := m.Predict([]float64{1}); math.IsNaN(p) {
		t.Fatal("short vector prediction NaN")
	}
}

func TestSizeBytesPositive(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}}
	y := []float64{1, 2, 3, 4, 5, 6}
	m := Train(DefaultConfig(), x, y)
	if m.SizeBytes() <= 0 {
		t.Fatal("size should be positive")
	}
	if m.NumTrees() != DefaultConfig().Trees {
		t.Fatalf("trees %d", m.NumTrees())
	}
}

func TestBinOf(t *testing.T) {
	edges := []float64{1, 2, 3}
	cases := []struct {
		v    float64
		want uint8
	}{{0.5, 0}, {1, 1}, {1.5, 1}, {2, 2}, {2.9, 2}, {3, 3}, {10, 3}}
	for _, c := range cases {
		if got := binOf(edges, c.v); got != c.want {
			t.Fatalf("binOf(%g) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestComputeBinsMonotone(t *testing.T) {
	x := [][]float64{}
	for i := 0; i < 100; i++ {
		x = append(x, []float64{float64(i * i)})
	}
	bins := computeBins(x, 16)
	edges := bins[0]
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			t.Fatalf("edges not strictly increasing at %d", i)
		}
	}
}

func TestMinChildWeightLimitsSplits(t *testing.T) {
	x := [][]float64{{0}, {1}}
	y := []float64{0, 10}
	cfg := DefaultConfig()
	cfg.MinChildWeight = 5 // cannot split 2 samples
	m := Train(cfg, x, y)
	// Without splits every prediction is the shrunk mean path.
	if math.Abs(m.Predict([]float64{0})-m.Predict([]float64{1})) > 1e-9 {
		t.Fatal("split happened despite min child weight")
	}
}

func TestGammaSuppressesWeakSplits(t *testing.T) {
	rng := simrand.New(7)
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		x = append(x, []float64{rng.Uniform(0, 1)})
		y = append(y, rng.Normal(0, 0.01)) // nearly no signal
	}
	strict := DefaultConfig()
	strict.Gamma = 100 // no split can beat this gain threshold
	m := Train(strict, x, y)
	if math.Abs(m.Predict([]float64{0.1})-m.Predict([]float64{0.9})) > 1e-9 {
		t.Fatal("gamma failed to suppress weak splits")
	}
}

func TestMaxDepthBoundsTreeSize(t *testing.T) {
	rng := simrand.New(8)
	var x [][]float64
	var y []float64
	for i := 0; i < 300; i++ {
		v := rng.Uniform(0, 1)
		x = append(x, []float64{v})
		y = append(y, math.Sin(12*v))
	}
	shallow := DefaultConfig()
	shallow.Trees = 1
	shallow.MaxDepth = 1
	m := Train(shallow, x, y)
	// Depth 1 = a stump: at most 3 nodes.
	if got := len(m.trees[0].nodes); got > 3 {
		t.Fatalf("stump has %d nodes", got)
	}
}
