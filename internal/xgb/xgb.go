// Package xgb implements gradient-boosted regression trees from scratch —
// the XGBoost-style model used both as a cost-predictor baseline (§7.1) and
// as the project-selection Ranker (§6). Trees are grown greedily over
// quantile-binned feature histograms with second-order (grad/hess) gain, L2
// leaf regularization, and shrinkage.
package xgb

import (
	"encoding/json"
	"math"
	"sort"
)

// Config are the booster hyperparameters (library-default flavored, per the
// paper's no-tuning protocol).
type Config struct {
	Trees          int
	MaxDepth       int
	LearningRate   float64
	Lambda         float64 // L2 leaf regularization
	Gamma          float64 // split gain threshold
	MinChildWeight float64 // min hessian sum per leaf
	Bins           int     // histogram bins per feature
}

// DefaultConfig mirrors common XGBoost defaults at simulator scale.
func DefaultConfig() Config {
	return Config{
		Trees:          50,
		MaxDepth:       5,
		LearningRate:   0.3,
		Lambda:         1,
		Gamma:          0,
		MinChildWeight: 1,
		Bins:           32,
	}
}

// node is one tree node in flattened form.
type node struct {
	feature int
	// threshold is a raw feature value; samples with value < threshold go
	// left.
	threshold   float64
	left, right int
	leaf        bool
	value       float64
}

type tree struct {
	nodes []node
}

func (t *tree) predict(x []float64) float64 {
	i := 0
	for {
		n := &t.nodes[i]
		if n.leaf {
			return n.value
		}
		f := 0.0
		if n.feature < len(x) {
			f = x[n.feature]
		}
		if f < n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// Model is a trained booster.
type Model struct {
	cfg   Config
	base  float64
	trees []*tree
	// binEdges[f] holds the bin upper edges for feature f.
	binEdges [][]float64
}

// Train fits a regression booster on X (n samples × d features) and targets
// y with squared loss.
func Train(cfg Config, x [][]float64, y []float64) *Model {
	if cfg.Trees <= 0 {
		cfg = DefaultConfig()
	}
	m := &Model{cfg: cfg}
	n := len(x)
	if n == 0 {
		return m
	}
	d := len(x[0])
	m.base = mean(y)
	m.binEdges = computeBins(x, cfg.Bins)

	// Pre-bin all samples.
	binned := make([][]uint8, n)
	for i := range x {
		binned[i] = make([]uint8, d)
		for f := 0; f < d; f++ {
			binned[i][f] = binOf(m.binEdges[f], x[i][f])
		}
	}

	pred := make([]float64, n)
	for i := range pred {
		pred[i] = m.base
	}
	grad := make([]float64, n)
	hess := make([]float64, n)
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}

	for t := 0; t < cfg.Trees; t++ {
		for i := range grad {
			grad[i] = pred[i] - y[i]
			hess[i] = 1
		}
		tr := &tree{}
		b := &builder{cfg: cfg, binned: binned, edges: m.binEdges, grad: grad, hess: hess, tree: tr}
		b.grow(all, 0)
		m.trees = append(m.trees, tr)
		for i := range pred {
			pred[i] += cfg.LearningRate * tr.predict(x[i])
		}
	}
	return m
}

// Predict returns the model output for one sample.
func (m *Model) Predict(x []float64) float64 {
	out := m.base
	for _, t := range m.trees {
		out += m.cfg.LearningRate * t.predict(x)
	}
	return out
}

// NumTrees returns how many trees were fit.
func (m *Model) NumTrees() int { return len(m.trees) }

// SizeBytes estimates the serialized model footprint.
func (m *Model) SizeBytes() int {
	total := 0
	for _, t := range m.trees {
		total += len(t.nodes) * 40 // feature, threshold, children, value
	}
	for _, e := range m.binEdges {
		total += len(e) * 8
	}
	return total
}

type builder struct {
	cfg    Config
	binned [][]uint8
	edges  [][]float64
	grad   []float64
	hess   []float64
	tree   *tree
}

// grow builds the subtree over the sample set and returns its node index.
func (b *builder) grow(samples []int, depth int) int {
	gSum, hSum := 0.0, 0.0
	for _, i := range samples {
		gSum += b.grad[i]
		hSum += b.hess[i]
	}
	leafValue := -gSum / (hSum + b.cfg.Lambda)

	idx := len(b.tree.nodes)
	b.tree.nodes = append(b.tree.nodes, node{leaf: true, value: leafValue})
	if depth >= b.cfg.MaxDepth || len(samples) < 2 {
		return idx
	}

	bestGain := b.cfg.Gamma
	bestFeat, bestBin := -1, -1
	parentScore := gSum * gSum / (hSum + b.cfg.Lambda)
	d := len(b.binned[0])
	nBins := b.cfg.Bins

	gh := make([]float64, nBins)
	hh := make([]float64, nBins)
	for f := 0; f < d; f++ {
		for bi := 0; bi < nBins; bi++ {
			gh[bi], hh[bi] = 0, 0
		}
		for _, i := range samples {
			bi := int(b.binned[i][f])
			gh[bi] += b.grad[i]
			hh[bi] += b.hess[i]
		}
		gl, hl := 0.0, 0.0
		for bi := 0; bi < nBins-1; bi++ {
			gl += gh[bi]
			hl += hh[bi]
			gr, hr := gSum-gl, hSum-hl
			if hl < b.cfg.MinChildWeight || hr < b.cfg.MinChildWeight {
				continue
			}
			gain := 0.5 * (gl*gl/(hl+b.cfg.Lambda) + gr*gr/(hr+b.cfg.Lambda) - parentScore)
			if gain > bestGain {
				bestGain = gain
				bestFeat, bestBin = f, bi
			}
		}
	}
	if bestFeat < 0 {
		return idx
	}

	var left, right []int
	for _, i := range samples {
		if int(b.binned[i][bestFeat]) <= bestBin {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return idx
	}
	li := b.grow(left, depth+1)
	ri := b.grow(right, depth+1)
	b.tree.nodes[idx] = node{
		feature:   bestFeat,
		threshold: b.edgeValue(bestFeat, bestBin),
		left:      li,
		right:     ri,
	}
	return idx
}

// edgeValue returns the raw threshold between bin and bin+1.
func (b *builder) edgeValue(f, bin int) float64 {
	edges := b.edges[f]
	if bin < len(edges) {
		return edges[bin]
	}
	return math.Inf(1)
}

// computeBins derives quantile bin edges per feature. edges[f] has Bins-1
// upper edges; binOf maps a value to [0, Bins).
func computeBins(x [][]float64, bins int) [][]float64 {
	if bins < 2 {
		bins = 2
	}
	d := len(x[0])
	out := make([][]float64, d)
	vals := make([]float64, len(x))
	for f := 0; f < d; f++ {
		for i := range x {
			vals[i] = x[i][f]
		}
		sort.Float64s(vals)
		var edges []float64
		for b := 1; b < bins; b++ {
			q := vals[len(vals)*b/bins]
			if len(edges) == 0 || q > edges[len(edges)-1] {
				edges = append(edges, q)
			}
		}
		out[f] = edges
	}
	return out
}

// binOf maps a raw value to its bin under the given edges: the number of
// edges strictly less than or equal to it, capped at Bins-1 by construction
// (len(edges) <= Bins-1).
func binOf(edges []float64, v float64) uint8 {
	lo, hi := 0, len(edges)
	for lo < hi {
		mid := (lo + hi) / 2
		if edges[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return uint8(lo)
}

func mean(y []float64) float64 {
	if len(y) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range y {
		s += v
	}
	return s / float64(len(y))
}

// modelDTO is the serialized form of a Model.
type modelDTO struct {
	Config   Config      `json:"config"`
	Base     float64     `json:"base"`
	Trees    [][]nodeDTO `json:"trees"`
	BinEdges [][]float64 `json:"binEdges"`
}

type nodeDTO struct {
	Feature   int     `json:"f"`
	Threshold float64 `json:"t"`
	Left      int     `json:"l"`
	Right     int     `json:"r"`
	Leaf      bool    `json:"leaf"`
	Value     float64 `json:"v"`
}

// MarshalJSON serializes the trained booster.
func (m *Model) MarshalJSON() ([]byte, error) {
	dto := modelDTO{Config: m.cfg, Base: m.base, BinEdges: m.binEdges}
	for _, t := range m.trees {
		nodes := make([]nodeDTO, len(t.nodes))
		for i, n := range t.nodes {
			nodes[i] = nodeDTO{Feature: n.feature, Threshold: n.threshold, Left: n.left, Right: n.right, Leaf: n.leaf, Value: n.value}
		}
		dto.Trees = append(dto.Trees, nodes)
	}
	return json.Marshal(dto)
}

// UnmarshalJSON restores a trained booster.
func (m *Model) UnmarshalJSON(data []byte) error {
	var dto modelDTO
	if err := json.Unmarshal(data, &dto); err != nil {
		return err
	}
	m.cfg = dto.Config
	m.base = dto.Base
	m.binEdges = dto.BinEdges
	m.trees = nil
	for _, nodes := range dto.Trees {
		t := &tree{nodes: make([]node, len(nodes))}
		for i, n := range nodes {
			t.nodes[i] = node{feature: n.Feature, threshold: n.Threshold, left: n.Left, right: n.Right, leaf: n.Leaf, value: n.Value}
		}
		m.trees = append(m.trees, t)
	}
	return nil
}
