// Package theory implements the probabilistic framework of §5 and
// Appendices C and E.1: log-normal modeling of plan execution costs (MLE
// fitting, Kolmogorov–Smirnov validation), the distribution of the minimum
// cost across candidate plans (Lemma 1), the expected deviance of a plan
// selection from the oracle choice (Eq. 2), and Monte-Carlo counterparts
// used to verify Theorem 1 empirically.
package theory

import (
	"errors"
	"math"
	"sort"

	"loam/internal/simrand"
)

// LogNormal is a log-normal distribution with underlying normal parameters
// Mu and Sigma.
type LogNormal struct {
	Mu, Sigma float64
}

// ErrNoSamples is returned when fitting is attempted on an empty sample.
var ErrNoSamples = errors.New("theory: no samples")

// FitLogNormal fits a log-normal by maximum likelihood: Mu and Sigma are the
// mean and standard deviation of the log samples (App. E.1, parameter
// estimation).
func FitLogNormal(samples []float64) (LogNormal, error) {
	if len(samples) == 0 {
		return LogNormal{}, ErrNoSamples
	}
	n := float64(len(samples))
	mu := 0.0
	for _, s := range samples {
		mu += math.Log(math.Max(s, 1e-12))
	}
	mu /= n
	v := 0.0
	for _, s := range samples {
		d := math.Log(math.Max(s, 1e-12)) - mu
		v += d * d
	}
	sigma := math.Sqrt(v / n)
	if sigma < 1e-9 {
		sigma = 1e-9
	}
	return LogNormal{Mu: mu, Sigma: sigma}, nil
}

// normCDF is the standard normal CDF.
func normCDF(z float64) float64 { return 0.5 * (1 + math.Erf(z/math.Sqrt2)) }

// PDF returns the density at x.
func (d LogNormal) PDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := (math.Log(x) - d.Mu) / d.Sigma
	return math.Exp(-z*z/2) / (x * d.Sigma * math.Sqrt(2*math.Pi))
}

// CDF returns P(X <= x).
func (d LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return normCDF((math.Log(x) - d.Mu) / d.Sigma)
}

// Mean returns E[X] = exp(Mu + Sigma^2/2).
func (d LogNormal) Mean() float64 { return math.Exp(d.Mu + d.Sigma*d.Sigma/2) }

// Quantile returns the p-quantile (0 < p < 1) via bisection on the CDF.
func (d LogNormal) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		p = 1 - 1e-12
	}
	// Invert the normal quantile by bisection on z.
	lo, hi := -12.0, 12.0
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if normCDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Exp(d.Mu + d.Sigma*(lo+hi)/2)
}

// PartialExpectation returns E[X · 1{X > y}] in closed form.
func (d LogNormal) PartialExpectation(y float64) float64 {
	if y <= 0 {
		return d.Mean()
	}
	z := (d.Mu + d.Sigma*d.Sigma - math.Log(y)) / d.Sigma
	return d.Mean() * normCDF(z)
}

// Sample draws one variate.
func (d LogNormal) Sample(rng *simrand.RNG) float64 {
	return rng.LogNormal(d.Mu, d.Sigma)
}

// KSTest computes the Kolmogorov–Smirnov statistic of samples against the
// distribution and the asymptotic p-value (the paper reports an average
// p-value ≈ 0.6 for recurring plans, App. E.1).
func KSTest(samples []float64, d LogNormal) (stat, pValue float64) {
	n := len(samples)
	if n == 0 {
		return 0, 1
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	for i, x := range sorted {
		f := d.CDF(x)
		lo := float64(i) / float64(n)
		hi := float64(i+1) / float64(n)
		if v := math.Abs(f - lo); v > stat {
			stat = v
		}
		if v := math.Abs(f - hi); v > stat {
			stat = v
		}
	}
	return stat, ksPValue(math.Sqrt(float64(n)) * stat)
}

// ksPValue evaluates the Kolmogorov distribution's survival function
// Q(t) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2 k² t²}.
func ksPValue(t float64) float64 {
	if t < 1e-6 {
		return 1
	}
	sum := 0.0
	for k := 1; k <= 100; k++ {
		term := 2 * math.Pow(-1, float64(k-1)) * math.Exp(-2*float64(k*k)*t*t)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
	}
	if sum < 0 {
		sum = 0
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// MinPDF evaluates the density of min over the given independent cost
// distributions at y (Lemma 1):
// f(y) = Σ_C f_C(y) Π_{C'≠C} [1 − F_{C'}(y)].
func MinPDF(dists []LogNormal, y float64) float64 {
	total := 0.0
	for i := range dists {
		term := dists[i].PDF(y)
		if term == 0 {
			continue
		}
		for j := range dists {
			if j == i {
				continue
			}
			term *= 1 - dists[j].CDF(y)
		}
		total += term
	}
	return total
}

// grid builds a log-spaced integration grid spanning all distributions.
func grid(dists []LogNormal, points int) []float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, d := range dists {
		if q := d.Quantile(1e-5); q < lo {
			lo = q
		}
		if q := d.Quantile(1 - 1e-5); q > hi {
			hi = q
		}
	}
	if !(lo > 0) || !(hi > lo) {
		lo, hi = 1e-6, 1
	}
	out := make([]float64, points)
	logLo, logHi := math.Log(lo), math.Log(hi)
	for i := range out {
		out[i] = math.Exp(logLo + (logHi-logLo)*float64(i)/float64(points-1))
	}
	return out
}

// ExpectedMin returns E[min_i C_i] by numeric integration over the Lemma-1
// density — the oracle model's expected cost.
func ExpectedMin(dists []LogNormal) float64 {
	if len(dists) == 0 {
		return 0
	}
	if len(dists) == 1 {
		return dists[0].Mean()
	}
	g := grid(dists, 600)
	total := 0.0
	for i := 1; i < len(g); i++ {
		y := (g[i] + g[i-1]) / 2
		total += y * MinPDF(dists, y) * (g[i] - g[i-1])
	}
	return total
}

// ExpectedDeviance returns E[D_E(M)] (Eq. 2) for a model that selects plan
// `chosen`: E[(C_chosen − C*)⁺] with C* the minimum over the other plans,
// assuming independence. The inner integral uses the closed-form log-normal
// partial expectation.
func ExpectedDeviance(dists []LogNormal, chosen int) float64 {
	if len(dists) <= 1 || chosen < 0 || chosen >= len(dists) {
		return 0
	}
	others := make([]LogNormal, 0, len(dists)-1)
	for i, d := range dists {
		if i != chosen {
			others = append(others, d)
		}
	}
	cm := dists[chosen]
	g := grid(append(others, cm), 600)
	total := 0.0
	for i := 1; i < len(g); i++ {
		y := (g[i] + g[i-1]) / 2
		fStar := MinPDF(others, y)
		if fStar == 0 {
			continue
		}
		// ∫_y^∞ (x − y) f_M(x) dx = PE_M(y) − y (1 − F_M(y)).
		inner := cm.PartialExpectation(y) - y*(1-cm.CDF(y))
		if inner < 0 {
			inner = 0
		}
		total += fStar * inner * (g[i] - g[i-1])
	}
	return total
}

// BestAchievable returns the index of the plan minimizing expected cost —
// the model M_b of Theorem 1.
func BestAchievable(dists []LogNormal) int {
	best := 0
	for i := 1; i < len(dists); i++ {
		if dists[i].Mean() < dists[best].Mean() {
			best = i
		}
	}
	return best
}

// MonteCarloDeviance estimates E[D_E(M)] by sampling: for each trial it
// draws one cost per plan and charges max(0, c_chosen − min_i c_i).
func MonteCarloDeviance(rng *simrand.RNG, dists []LogNormal, chosen, trials int) float64 {
	if len(dists) == 0 || chosen < 0 || chosen >= len(dists) {
		return 0
	}
	total := 0.0
	for t := 0; t < trials; t++ {
		minC := math.Inf(1)
		var cm float64
		for i, d := range dists {
			c := d.Sample(rng)
			if c < minC {
				minC = c
			}
			if i == chosen {
				cm = c
			}
		}
		total += cm - minC
	}
	return total / float64(trials)
}

// MonteCarloExpectedMin estimates the oracle expected cost by sampling.
func MonteCarloExpectedMin(rng *simrand.RNG, dists []LogNormal, trials int) float64 {
	if len(dists) == 0 {
		return 0
	}
	total := 0.0
	for t := 0; t < trials; t++ {
		minC := math.Inf(1)
		for _, d := range dists {
			if c := d.Sample(rng); c < minC {
				minC = c
			}
		}
		total += minC
	}
	return total / float64(trials)
}

// RelativeDeviance returns E[D]/E[C_oracle] — the paper's relative deviance
// metric (§7.2.5).
func RelativeDeviance(dists []LogNormal, chosen int) float64 {
	oracle := ExpectedMin(dists)
	if oracle <= 0 {
		return 0
	}
	return ExpectedDeviance(dists, chosen) / oracle
}

// Moments returns the sample mean and relative standard deviation
// (σ/μ) — the Fig.-1 statistic.
func Moments(samples []float64) (mean, rsd float64) {
	n := float64(len(samples))
	if n == 0 {
		return 0, 0
	}
	for _, s := range samples {
		mean += s
	}
	mean /= n
	v := 0.0
	for _, s := range samples {
		d := s - mean
		v += d * d
	}
	if mean > 0 {
		rsd = math.Sqrt(v/n) / mean
	}
	return mean, rsd
}
