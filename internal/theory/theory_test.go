package theory

import (
	"math"
	"testing"
	"testing/quick"

	"loam/internal/simrand"
)

func TestLogNormalPDFCDFConsistency(t *testing.T) {
	d := LogNormal{Mu: 1, Sigma: 0.5}
	// CDF is the integral of PDF: check numerically over a grid.
	prev := 0.0
	step := 0.05
	integral := 0.0
	for x := step; x < 50; x += step {
		integral += d.PDF(x-step/2) * step
		if c := d.CDF(x); c < prev-1e-12 {
			t.Fatalf("CDF decreasing at %g", x)
		} else {
			prev = c
		}
	}
	if math.Abs(integral-1) > 0.01 {
		t.Fatalf("PDF integrates to %g", integral)
	}
}

func TestLogNormalQuantileInvertsCDF(t *testing.T) {
	d := LogNormal{Mu: 0.3, Sigma: 0.8}
	for _, p := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		x := d.Quantile(p)
		if math.Abs(d.CDF(x)-p) > 1e-6 {
			t.Fatalf("CDF(Quantile(%g)) = %g", p, d.CDF(x))
		}
	}
}

func TestLogNormalMean(t *testing.T) {
	d := LogNormal{Mu: 2, Sigma: 0.4}
	want := math.Exp(2 + 0.4*0.4/2)
	if math.Abs(d.Mean()-want) > 1e-9 {
		t.Fatalf("mean %g", d.Mean())
	}
}

func TestFitLogNormalRoundTrip(t *testing.T) {
	rng := simrand.New(3)
	truth := LogNormal{Mu: 1.7, Sigma: 0.35}
	samples := make([]float64, 20000)
	for i := range samples {
		samples[i] = truth.Sample(rng)
	}
	fit, err := FitLogNormal(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Mu-truth.Mu) > 0.02 || math.Abs(fit.Sigma-truth.Sigma) > 0.02 {
		t.Fatalf("fit %+v, want %+v", fit, truth)
	}
}

func TestFitLogNormalEmpty(t *testing.T) {
	if _, err := FitLogNormal(nil); err == nil {
		t.Fatal("empty fit should error")
	}
}

func TestPartialExpectation(t *testing.T) {
	d := LogNormal{Mu: 0.5, Sigma: 0.6}
	if math.Abs(d.PartialExpectation(0)-d.Mean()) > 1e-9 {
		t.Fatal("PE(0) should be the mean")
	}
	// PE decreases in y and tends to 0.
	prev := d.Mean()
	for _, y := range []float64{0.5, 1, 2, 5, 20} {
		pe := d.PartialExpectation(y)
		if pe > prev+1e-12 {
			t.Fatalf("PE increasing at %g", y)
		}
		prev = pe
	}
	if d.PartialExpectation(1000) > 1e-6 {
		t.Fatal("PE should vanish for huge y")
	}
	// Numeric check: PE(y) = ∫_y^∞ x f(x) dx.
	y := 1.5
	num := 0.0
	for x := y; x < 100; x += 0.01 {
		num += (x + 0.005) * d.PDF(x+0.005) * 0.01
	}
	if math.Abs(num-d.PartialExpectation(y)) > 0.01 {
		t.Fatalf("PE numeric %g vs closed form %g", num, d.PartialExpectation(y))
	}
}

func TestKSTestAcceptsTrueDistribution(t *testing.T) {
	rng := simrand.New(4)
	d := LogNormal{Mu: 1, Sigma: 0.3}
	samples := make([]float64, 200)
	for i := range samples {
		samples[i] = d.Sample(rng)
	}
	_, p := KSTest(samples, d)
	if p < 0.05 {
		t.Fatalf("KS rejected the true distribution: p=%g", p)
	}
}

func TestKSTestRejectsWrongDistribution(t *testing.T) {
	rng := simrand.New(5)
	d := LogNormal{Mu: 1, Sigma: 0.3}
	samples := make([]float64, 400)
	for i := range samples {
		samples[i] = d.Sample(rng)
	}
	wrong := LogNormal{Mu: 2.5, Sigma: 0.3}
	_, p := KSTest(samples, wrong)
	if p > 0.01 {
		t.Fatalf("KS accepted a wrong distribution: p=%g", p)
	}
}

func TestMinPDFIntegratesToOne(t *testing.T) {
	dists := []LogNormal{
		{Mu: 1, Sigma: 0.4},
		{Mu: 1.5, Sigma: 0.2},
		{Mu: 0.8, Sigma: 0.6},
	}
	g := grid(dists, 2000)
	total := 0.0
	for i := 1; i < len(g); i++ {
		y := (g[i] + g[i-1]) / 2
		total += MinPDF(dists, y) * (g[i] - g[i-1])
	}
	if math.Abs(total-1) > 0.02 {
		t.Fatalf("min-PDF integrates to %g", total)
	}
}

func TestExpectedMinBelowAllMeans(t *testing.T) {
	dists := []LogNormal{
		{Mu: 1, Sigma: 0.4},
		{Mu: 1.2, Sigma: 0.3},
	}
	em := ExpectedMin(dists)
	for i, d := range dists {
		if em > d.Mean()+1e-9 {
			t.Fatalf("E[min] %g exceeds mean of dist %d (%g)", em, i, d.Mean())
		}
	}
	// Single distribution: E[min] = mean.
	if got := ExpectedMin(dists[:1]); math.Abs(got-dists[0].Mean()) > 1e-9 {
		t.Fatalf("single-dist E[min] %g", got)
	}
}

func TestExpectedMinMatchesMonteCarlo(t *testing.T) {
	rng := simrand.New(6)
	dists := []LogNormal{
		{Mu: 2, Sigma: 0.5},
		{Mu: 2.3, Sigma: 0.2},
		{Mu: 1.8, Sigma: 0.7},
	}
	analytic := ExpectedMin(dists)
	mc := MonteCarloExpectedMin(rng, dists, 200_000)
	if math.Abs(analytic-mc)/mc > 0.02 {
		t.Fatalf("E[min] analytic %g vs MC %g", analytic, mc)
	}
}

func TestExpectedDevianceMatchesMonteCarlo(t *testing.T) {
	rng := simrand.New(7)
	dists := []LogNormal{
		{Mu: 2, Sigma: 0.5},
		{Mu: 2.2, Sigma: 0.3},
		{Mu: 2.4, Sigma: 0.4},
	}
	for chosen := range dists {
		analytic := ExpectedDeviance(dists, chosen)
		mc := MonteCarloDeviance(rng, dists, chosen, 200_000)
		if math.Abs(analytic-mc) > 0.05*(mc+0.1) {
			t.Fatalf("chosen %d: analytic %g vs MC %g", chosen, analytic, mc)
		}
	}
}

func TestTheorem1OrderingProperty(t *testing.T) {
	// For random candidate cost distributions, E[D(M)] >= E[D(M_b)] >= 0 for
	// every choice M — the Theorem-1 statement.
	rng := simrand.New(8)
	if err := quick.Check(func(seed uint16) bool {
		r := rng.DeriveN("case", int(seed))
		n := 2 + r.Intn(4)
		dists := make([]LogNormal, n)
		for i := range dists {
			dists[i] = LogNormal{Mu: r.Uniform(0, 3), Sigma: r.Uniform(0.05, 0.8)}
		}
		b := BestAchievable(dists)
		devB := ExpectedDeviance(dists, b)
		if devB < -1e-9 {
			return false
		}
		for m := range dists {
			if ExpectedDeviance(dists, m) < devB-2e-2*(1+devB) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBestAchievablePicksMinMean(t *testing.T) {
	dists := []LogNormal{
		{Mu: 2, Sigma: 0.1},
		{Mu: 1, Sigma: 0.1},
		{Mu: 3, Sigma: 0.1},
	}
	if got := BestAchievable(dists); got != 1 {
		t.Fatalf("best %d", got)
	}
}

func TestRelativeDeviance(t *testing.T) {
	dists := []LogNormal{
		{Mu: 2, Sigma: 0.3},
		{Mu: 2.5, Sigma: 0.3},
	}
	rd := RelativeDeviance(dists, 1)
	if rd <= 0 {
		t.Fatalf("choosing the worse plan should have positive deviance: %g", rd)
	}
	rdBest := RelativeDeviance(dists, 0)
	if rdBest >= rd {
		t.Fatal("better choice should have lower relative deviance")
	}
}

func TestDegenerateDevianceCases(t *testing.T) {
	if ExpectedDeviance(nil, 0) != 0 {
		t.Fatal("empty dists should give 0")
	}
	one := []LogNormal{{Mu: 1, Sigma: 0.1}}
	if ExpectedDeviance(one, 0) != 0 {
		t.Fatal("single candidate has no deviance")
	}
	if ExpectedDeviance(one, 5) != 0 {
		t.Fatal("out-of-range choice should give 0")
	}
}

func TestMoments(t *testing.T) {
	mean, rsd := Moments([]float64{10, 10, 10})
	if mean != 10 || rsd != 0 {
		t.Fatalf("constant moments %g %g", mean, rsd)
	}
	mean, rsd = Moments([]float64{5, 15})
	if mean != 10 || math.Abs(rsd-0.5) > 1e-12 {
		t.Fatalf("moments %g %g", mean, rsd)
	}
	if m, r := Moments(nil); m != 0 || r != 0 {
		t.Fatal("empty moments")
	}
}

func TestKSPValueBounds(t *testing.T) {
	if p := ksPValue(0); p != 1 {
		t.Fatalf("p at 0 = %g", p)
	}
	if p := ksPValue(5); p > 1e-6 {
		t.Fatalf("p at 5 = %g", p)
	}
	prev := 1.0
	for x := 0.1; x < 3; x += 0.1 {
		p := ksPValue(x)
		if p > prev+1e-9 {
			t.Fatalf("p-value not decreasing at %g", x)
		}
		prev = p
	}
}
