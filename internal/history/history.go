// Package history implements the per-project historical query repository
// (§2.1, phase 4): every completed execution is logged with its plan,
// per-stage execution environment, and end-to-end cost, forming the training
// data for LOAM's adaptive cost predictor.
package history

import (
	"sort"
	"sync"

	"loam/internal/exec"
	"loam/internal/query"
)

// Entry pairs an execution record with the logical query that produced it.
type Entry struct {
	Query  *query.Query
	Record *exec.Record
}

// Repository is one project's query log. It is safe for concurrent use:
// appends from concurrently executing queries and reads from training or
// selection are serialized by an internal RWMutex.
type Repository struct {
	mu      sync.RWMutex
	entries []Entry
}

// Append logs an execution.
func (r *Repository) Append(e Entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries = append(r.entries, e)
}

// Len returns the number of logged executions.
func (r *Repository) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// All returns every entry (shared backing array; callers must not mutate).
// The returned slice is a stable snapshot: later Appends never alias it.
func (r *Repository) All() []Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.entries[:len(r.entries):len(r.entries)]
}

// Window returns entries with fromDay <= day < toDay.
func (r *Repository) Window(fromDay, toDay int) []Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.windowLocked(fromDay, toDay)
}

// windowLocked filters entries by day; callers hold at least the read lock.
func (r *Repository) windowLocked(fromDay, toDay int) []Entry {
	out := make([]Entry, 0, len(r.entries))
	for _, e := range r.entries {
		if e.Record.Day >= fromDay && e.Record.Day < toDay {
			out = append(out, e)
		}
	}
	return out
}

// CountByDay returns the number of queries per day, used by the selector's
// volume rules.
func (r *Repository) CountByDay() map[int]int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[int]int)
	for _, e := range r.entries {
		out[e.Record.Day]++
	}
	return out
}

// Days returns the sorted distinct days present.
func (r *Repository) Days() []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	seen := map[int]bool{}
	for _, e := range r.entries {
		seen[e.Record.Day] = true
	}
	out := make([]int, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// Dedup returns entries with duplicate plans removed (identical recurring
// executions collapse to their first occurrence), mirroring the paper's
// "deduplicated queries over 30 consecutive days".
func Dedup(entries []Entry) []Entry {
	seen := make(map[uint64]bool, len(entries))
	out := make([]Entry, 0, len(entries))
	for _, e := range entries {
		fp := e.Record.Plan.Root.Fingerprint()
		if seen[fp] {
			continue
		}
		seen[fp] = true
		out = append(out, e)
	}
	return out
}

// Split divides entries into a training window (days [0, trainDays)) and a
// test window (days [trainDays, trainDays+testDays)), deduplicated, with the
// training set capped at maxTrain (0 = uncapped) — the paper's 25-day /
// 5-day / ≤10,000-query protocol.
func (r *Repository) Split(trainDays, testDays, maxTrain int) (train, test []Entry) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	train = Dedup(r.windowLocked(0, trainDays))
	if maxTrain > 0 && len(train) > maxTrain {
		train = train[:maxTrain]
	}
	test = Dedup(r.windowLocked(trainDays, trainDays+testDays))
	return train, test
}

// AvgCost returns the mean CPU cost across entries (0 for empty input).
func AvgCost(entries []Entry) float64 {
	if len(entries) == 0 {
		return 0
	}
	total := 0.0
	for _, e := range entries {
		total += e.Record.CPUCost
	}
	return total / float64(len(entries))
}
