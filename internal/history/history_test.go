package history

import (
	"fmt"
	"testing"

	"loam/internal/exec"
	"loam/internal/plan"
	"loam/internal/query"
)

func entry(day int, table string, cost float64) Entry {
	p := &plan.Plan{Root: &plan.Node{Op: plan.OpTableScan, Table: table, PartitionsRead: 1}}
	return Entry{
		Query:  &query.Query{ID: fmt.Sprintf("q-%d-%s", day, table), Day: day},
		Record: &exec.Record{Day: day, Plan: p, CPUCost: cost},
	}
}

func TestWindow(t *testing.T) {
	r := &Repository{}
	for d := 0; d < 10; d++ {
		r.Append(entry(d, fmt.Sprintf("t%d", d), 100))
	}
	if got := len(r.Window(2, 5)); got != 3 {
		t.Fatalf("window size %d", got)
	}
	if got := len(r.Window(10, 20)); got != 0 {
		t.Fatalf("empty window size %d", got)
	}
	if r.Len() != 10 {
		t.Fatalf("len %d", r.Len())
	}
}

func TestCountByDayAndDays(t *testing.T) {
	r := &Repository{}
	r.Append(entry(1, "a", 1))
	r.Append(entry(1, "b", 1))
	r.Append(entry(3, "c", 1))
	counts := r.CountByDay()
	if counts[1] != 2 || counts[3] != 1 {
		t.Fatalf("counts %v", counts)
	}
	days := r.Days()
	if len(days) != 2 || days[0] != 1 || days[1] != 3 {
		t.Fatalf("days %v", days)
	}
}

func TestDedupCollapsesIdenticalPlans(t *testing.T) {
	entries := []Entry{
		entry(0, "same", 1),
		entry(1, "same", 2), // identical plan fingerprint
		entry(2, "other", 3),
	}
	got := Dedup(entries)
	if len(got) != 2 {
		t.Fatalf("dedup kept %d", len(got))
	}
	// First occurrence wins.
	if got[0].Record.CPUCost != 1 {
		t.Fatal("dedup did not keep first occurrence")
	}
}

func TestSplitCapsAndWindows(t *testing.T) {
	r := &Repository{}
	for d := 0; d < 10; d++ {
		for i := 0; i < 3; i++ {
			r.Append(entry(d, fmt.Sprintf("t%d-%d", d, i), float64(d)))
		}
	}
	train, test := r.Split(8, 2, 5)
	if len(train) != 5 {
		t.Fatalf("train capped at %d", len(train))
	}
	for _, e := range train {
		if e.Record.Day >= 8 {
			t.Fatal("train window leak")
		}
	}
	if len(test) != 6 {
		t.Fatalf("test size %d", len(test))
	}
	for _, e := range test {
		if e.Record.Day < 8 || e.Record.Day >= 10 {
			t.Fatal("test window leak")
		}
	}
	// Uncapped.
	train2, _ := r.Split(8, 2, 0)
	if len(train2) != 24 {
		t.Fatalf("uncapped train %d", len(train2))
	}
}

func TestAvgCost(t *testing.T) {
	if AvgCost(nil) != 0 {
		t.Fatal("empty avg should be 0")
	}
	entries := []Entry{entry(0, "a", 10), entry(0, "b", 30)}
	if got := AvgCost(entries); got != 20 {
		t.Fatalf("avg %g", got)
	}
}
