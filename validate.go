package loam

import (
	"fmt"

	"loam/internal/floatsafe"
	"loam/internal/selector"
	"loam/internal/theory"
)

// ValidationConfig controls the pre-deployment evaluation gate (§3): before
// a trained predictor serves production queries, it is evaluated on a
// sampled set of unseen test queries whose candidates are executed in the
// flighting environment.
type ValidationConfig struct {
	// SampleQueries is how many test queries to evaluate (0 = all).
	SampleQueries int
	// Reps is how many flighting executions measure each candidate.
	Reps int
	// MaxRegression is the acceptance threshold: the deployment is rejected
	// if the predictor's selected plans cost more than (1+MaxRegression)×
	// the native optimizer's plans on the validation sample.
	MaxRegression float64
}

// DefaultValidationConfig accepts deployments that do not regress the
// native optimizer by more than 5% on the validation sample.
func DefaultValidationConfig() ValidationConfig {
	return ValidationConfig{SampleQueries: 20, Reps: 3, MaxRegression: 0.05}
}

// ValidationResult is the outcome of the pre-deployment gate, and the raw
// material for the project selector's Ranker training pairs (§6).
type ValidationResult struct {
	Queries int
	// NativeCost and SelectedCost are average measured costs of the default
	// plans and the predictor-selected plans.
	NativeCost   float64
	SelectedCost float64
	// Gain is 1 − SelectedCost/NativeCost.
	Gain float64
	// ImprovementSpace is the mean relative D(M_d) measured on the sample —
	// the Ranker's regression target.
	ImprovementSpace float64
	// Accepted reports whether the deployment passes the gate.
	Accepted bool
	// RankerSamples are (default-plan features, improvement) pairs derived
	// from the validation run, used to (re)train the fleet-level Ranker.
	RankerSamples []selector.RankerSample
}

// Validate runs the §3 evaluation gate: the deployment's unseen test queries
// are steered, every candidate is executed in the flighting environment, and
// the predictor's selections are compared against the native optimizer's
// defaults. It does not log to the project history.
func (d *Deployment) Validate(cfg ValidationConfig) (*ValidationResult, error) {
	if cfg.Reps <= 0 {
		cfg.Reps = 3
	}
	if cfg.MaxRegression == 0 {
		cfg.MaxRegression = 0.05
	}
	test := d.TestSet
	if len(test) == 0 {
		return nil, fmt.Errorf("validate %s: no test queries", d.ProjectSim.Config.Name)
	}
	if cfg.SampleQueries > 0 && len(test) > cfg.SampleQueries {
		test = test[:cfg.SampleQueries]
	}

	ps := d.ProjectSim
	res := &ValidationResult{}
	var impSum float64
	var impCount int
	for _, e := range test {
		cands := ps.Explorer(e.Record.Day).Candidates(e.Query)
		opt := ps.execOptions(e.Query)

		// Flighting measurements per candidate.
		means := make([]float64, len(cands))
		dists := make([]theory.LogNormal, len(cands))
		for i, c := range cands {
			costs := make([]float64, cfg.Reps)
			for r := range costs {
				costs[r] = ps.Executor.Execute(c, e.Record.Day, opt).CPUCost
			}
			total := 0.0
			for _, v := range costs {
				total += v
			}
			means[i] = total / float64(len(costs))
			if fit, err := theory.FitLogNormal(costs); err == nil {
				dists[i] = fit
			}
		}

		// Predictor's choice under the deployment's strategy — scored raw
		// (guard.ScoreLearnedKeyed), not guarded: validation measures the
		// model itself, so a failure here must surface instead of degrading
		// to a fallback plan. Keyed scoring shares the plan-embedding cache
		// with serving; cached and uncached scores are bit-identical.
		envs, envKey := d.envSource()
		chosenPlan, _, err := d.grd.ScoreLearnedKeyed(cands, envs, envKey)
		if err != nil {
			return nil, fmt.Errorf("validate %s: %w", ps.Config.Name, err)
		}
		chosen := 0
		for i := range cands {
			if cands[i] == chosenPlan {
				chosen = i
				break
			}
		}
		res.Queries++
		res.NativeCost += means[0]
		res.SelectedCost += means[chosen]

		// Improvement space + Ranker sample from the default plan.
		if oracle := theory.ExpectedMin(dists); oracle > 0 {
			imp := theory.ExpectedDeviance(dists, 0) / oracle
			impSum += imp
			impCount++
			day := e.Record.Day
			rows := func(tableID string) float64 {
				if t := ps.Project.Table(tableID); t != nil {
					return float64(t.RowsAt(day))
				}
				return 0
			}
			res.RankerSamples = append(res.RankerSamples, selector.RankerSample{
				Features:    selector.Features(e.Record.Plan, e.Record.CPUCost, rows),
				Improvement: imp,
			})
		}
	}
	if res.Queries > 0 {
		res.NativeCost /= float64(res.Queries)
		res.SelectedCost /= float64(res.Queries)
	}
	if res.NativeCost > 0 {
		res.Gain = 1 - res.SelectedCost/res.NativeCost
	}
	if impCount > 0 {
		res.ImprovementSpace = impSum / float64(impCount)
	}
	res.Accepted = floatsafe.LessEq(res.SelectedCost, res.NativeCost*(1+cfg.MaxRegression))
	return res, nil
}
