package loam

import (
	"bytes"
	"context"
	"math"
	"testing"

	"loam/internal/query"
)

// TestOptimizeBatchParallelCacheIdentical runs the same recurring batch
// sequentially and at parallelism 4 against one deployment with the default
// plan cache enabled: plan choices and cost estimates must be bit-identical,
// and the second pass must be served largely from the cache.
func TestOptimizeBatchParallelCacheIdentical(t *testing.T) {
	dep, qs := serveDeployment(t, 41, 24)

	seq, err := dep.OptimizeBatch(context.Background(), qs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n := dep.Predictor().PlanCacheLen(); n == 0 {
		t.Fatal("default deployment served without populating the plan cache")
	}
	par, err := dep.OptimizeBatch(context.Background(), qs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		if par[i].ChosenIdx != seq[i].ChosenIdx {
			t.Fatalf("query %d: parallel chose %d, sequential %d", i, par[i].ChosenIdx, seq[i].ChosenIdx)
		}
		if len(par[i].Estimates) != len(seq[i].Estimates) {
			t.Fatalf("query %d: estimate count differs", i)
		}
		for j := range seq[i].Estimates {
			if math.Float64bits(par[i].Estimates[j]) != math.Float64bits(seq[i].Estimates[j]) {
				t.Fatalf("query %d estimate %d differs between cached parallel and sequential", i, j)
			}
		}
	}
}

// TestOptimizeBatchCacheRace hammers one deployment's plan cache from
// OptimizeBatch at high parallelism over a recurring workload; under -race
// this is the serving-layer data-race test for the singleflight cache.
func TestOptimizeBatchCacheRace(t *testing.T) {
	dep, qs := serveDeployment(t, 42, 16)
	// Repeat the workload so most lookups hit the cache concurrently.
	batch := append(append(append([]*query.Query{}, qs...), qs...), qs...)
	for round := 0; round < 2; round++ {
		if _, err := dep.OptimizeBatch(context.Background(), batch, 8); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPlanCacheInvalidatedOnRedeploy verifies the invalidation contract: a
// warmed cache never survives into a redeployed (restored or retrained)
// predictor, and the fresh deployment still chooses the same plans as the
// original model it was restored from.
func TestPlanCacheInvalidatedOnRedeploy(t *testing.T) {
	dep, qs := serveDeployment(t, 43, 8)
	first := make([]*Choice, len(qs))
	for i, q := range qs {
		c, err := dep.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		first[i] = c
	}
	if dep.Predictor().PlanCacheLen() == 0 {
		t.Fatal("cache not warmed")
	}

	var buf bytes.Buffer
	if err := dep.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := dep.ProjectSim.DeployFromModel(&buf, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n := restored.Predictor().PlanCacheLen(); n != 0 {
		t.Fatalf("restored deployment inherited %d cached embeddings", n)
	}
	for i, q := range qs {
		c, err := restored.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		if c.ChosenIdx != first[i].ChosenIdx {
			t.Fatalf("query %d: restored model chose %d, original %d", i, c.ChosenIdx, first[i].ChosenIdx)
		}
	}

	// Disabling the cache must not change choices either.
	uncached, err := dep.ProjectSim.Deploy(smallDeployConfig(), WithPlanCache(0))
	if err != nil {
		t.Fatal(err)
	}
	if n := uncached.Predictor().PlanCacheLen(); n != 0 {
		t.Fatalf("WithPlanCache(0) deployment holds %d entries", n)
	}
	for _, q := range qs {
		if _, err := uncached.Optimize(q); err != nil {
			t.Fatal(err)
		}
	}
	if n := uncached.Predictor().PlanCacheLen(); n != 0 {
		t.Fatalf("disabled cache accumulated %d entries", n)
	}
}

// smallDeployConfig mirrors serveDeployment's deploy configuration for tests
// that need a second deployment against the same project.
func smallDeployConfig() DeployConfig {
	dcfg := DefaultDeployConfig()
	dcfg.TrainDays = 5
	dcfg.TestDays = 1
	dcfg.Predictor.Epochs = 2
	dcfg.DomainPlans = 8
	return dcfg
}
