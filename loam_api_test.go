package loam

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"loam/internal/encoding"
	"loam/internal/predictor"
)

func tinyProject(t *testing.T, seed uint64) (*Simulation, *ProjectSim) {
	t.Helper()
	sim := NewSimulation(seed, DefaultSimulationConfig())
	cfg := DefaultProjectConfig("api")
	cfg.Archetype.NumTables = 10
	cfg.Workload.NumTemplates = 5
	cfg.Workload.QueriesPerDayMean = 4
	return sim, sim.AddProject(cfg)
}

func TestDeployFailsWithoutHistory(t *testing.T) {
	_, ps := tinyProject(t, 1)
	_, err := ps.Deploy(DefaultDeployConfig())
	if !errors.Is(err, predictor.ErrNoTrainingData) {
		t.Fatalf("want ErrNoTrainingData, got %v", err)
	}
}

func TestProjectLookup(t *testing.T) {
	sim, ps := tinyProject(t, 2)
	if sim.Project("api") != ps {
		t.Fatal("lookup failed")
	}
	if sim.Project("nope") != nil {
		t.Fatal("missing project should be nil")
	}
}

func TestViewCaching(t *testing.T) {
	_, ps := tinyProject(t, 3)
	v1 := ps.View(4)
	v2 := ps.View(4)
	if v1 != v2 {
		t.Fatal("views not cached per day")
	}
	if ps.View(5) == v1 {
		t.Fatal("different days share a view")
	}
}

func TestRunDaysBuildsHistory(t *testing.T) {
	_, ps := tinyProject(t, 4)
	ps.RunDays(0, 3)
	if ps.Repo.Len() == 0 {
		t.Fatal("no history")
	}
	days := ps.Repo.Days()
	if len(days) == 0 || days[0] != 0 {
		t.Fatalf("days %v", days)
	}
	for _, e := range ps.Repo.All() {
		if e.Record.CPUCost <= 0 {
			t.Fatal("non-positive logged cost")
		}
		if e.Record.TemplateID == "" {
			t.Fatal("template id not propagated")
		}
		if !e.Record.Plan.IsDefault() {
			t.Fatal("history should contain default plans only")
		}
	}
}

func TestOptimizeProducesValidChoice(t *testing.T) {
	_, ps := tinyProject(t, 5)
	ps.RunDays(0, 5)
	dcfg := DefaultDeployConfig()
	dcfg.TrainDays = 4
	dcfg.TestDays = 1
	dcfg.Predictor.Epochs = 2
	dcfg.DomainPlans = 8
	dep, err := ps.Deploy(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	q := ps.Gen.Day(5)[0]
	choice, err := dep.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if choice.Chosen == nil || len(choice.Candidates) == 0 {
		t.Fatal("empty choice")
	}
	if len(choice.Estimates) != len(choice.Candidates) {
		t.Fatal("estimate count mismatch")
	}
	if choice.Candidates[choice.ChosenIdx] != choice.Chosen {
		t.Fatal("chosen index inconsistent")
	}
	// The chosen estimate is the minimum.
	for _, est := range choice.Estimates {
		if est < choice.Estimates[choice.ChosenIdx] {
			t.Fatal("chosen plan is not the cheapest estimate")
		}
	}
	before := ps.Repo.Len()
	rec := dep.ExecuteChoice(choice)
	if rec.CPUCost <= 0 {
		t.Fatal("executed cost non-positive")
	}
	if ps.Repo.Len() != before+1 {
		t.Fatal("execution not logged")
	}
}

func TestDeterministicSimulations(t *testing.T) {
	run := func() float64 {
		_, ps := tinyProject(t, 77)
		ps.RunDays(0, 3)
		total := 0.0
		for _, e := range ps.Repo.All() {
			total += e.Record.CPUCost
		}
		return total
	}
	if run() != run() {
		t.Fatal("same-seed simulations diverged")
	}
}

func TestDeploymentStrategySwitch(t *testing.T) {
	_, ps := tinyProject(t, 6)
	ps.RunDays(0, 5)
	dcfg := DefaultDeployConfig()
	dcfg.TrainDays = 4
	dcfg.TestDays = 1
	dcfg.Predictor.Epochs = 2
	dcfg.DomainPlans = 4
	dep, err := ps.Deploy(dcfg, WithStrategy(predictor.StrategyClusterCurrent))
	if err != nil {
		t.Fatal(err)
	}
	if dep.Strategy != predictor.StrategyClusterCurrent {
		t.Fatalf("WithStrategy not applied, got %v", dep.Strategy)
	}
	q := ps.Gen.Day(5)[0]
	c1, err1 := dep.Optimize(q)
	dep.SetStrategy(predictor.StrategyMeanEnv)
	if dep.Strategy != predictor.StrategyMeanEnv {
		t.Fatalf("SetStrategy not applied, got %v", dep.Strategy)
	}
	c2, err2 := dep.Optimize(q)
	if err1 != nil || err2 != nil {
		t.Fatalf("optimize errors: %v / %v", err1, err2)
	}
	// Both must be valid selections (they may or may not coincide).
	if c1.Chosen == nil || c2.Chosen == nil {
		t.Fatal("strategy switch broke optimization")
	}
}

func TestExecOptionsRespectQuerySigma(t *testing.T) {
	_, ps := tinyProject(t, 7)
	q := ps.Gen.Templates[0].Instantiate(ps.Rng("t"), 0)
	opt := ps.ExecOptions(q)
	if opt.NoiseSigma != q.NoiseSigma {
		t.Fatalf("options sigma %g, query sigma %g", opt.NoiseSigma, q.NoiseSigma)
	}
}

func TestSaveAndRestoreDeployment(t *testing.T) {
	_, ps := tinyProject(t, 8)
	ps.RunDays(0, 6)
	dcfg := DefaultDeployConfig()
	dcfg.TrainDays = 5
	dcfg.TestDays = 1
	dcfg.Predictor.Epochs = 2
	dcfg.DomainPlans = 4
	dep, err := ps.Deploy(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dep.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ps.DeployFromModel(&buf, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := ps.Gen.Day(6)[0]
	c1, err1 := dep.Optimize(q)
	c2, err2 := restored.Optimize(q)
	if err1 != nil || err2 != nil {
		t.Fatalf("optimize errors: %v / %v", err1, err2)
	}
	if c1.ChosenIdx != c2.ChosenIdx {
		t.Fatalf("restored deployment picks differently: %d vs %d", c1.ChosenIdx, c2.ChosenIdx)
	}
	for i := range c1.Estimates {
		if c1.Estimates[i] != c2.Estimates[i] {
			t.Fatalf("estimate %d differs after restore", i)
		}
	}
}

// TestSaveAndRestoreNonDefaultEncoding deploys under a non-default encoder
// configuration and verifies the restored deployment rebuilds its encoder
// from the serialized configuration — not encoding.DefaultConfig() — so every
// estimate survives the round trip bit-for-bit.
func TestSaveAndRestoreNonDefaultEncoding(t *testing.T) {
	_, ps := tinyProject(t, 10)
	ps.RunDays(0, 6)
	dcfg := DefaultDeployConfig()
	dcfg.TrainDays = 5
	dcfg.TestDays = 1
	dcfg.Predictor.Epochs = 2
	dcfg.DomainPlans = 4
	dcfg.Encoder = encoding.Config{Segments: 3, SegmentDim: 16, MaxPartitions: 2048, MaxColumns: 32}
	dep, err := ps.Deploy(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dep.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ps.DeployFromModel(&buf, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.Predictor().EncoderConfig(); got != dcfg.Encoder {
		t.Fatalf("restored encoder config %+v, want %+v", got, dcfg.Encoder)
	}
	if got := restored.Encoder.Config(); got != dcfg.Encoder {
		t.Fatalf("restored deployment encoder rebuilt from %+v, want %+v", got, dcfg.Encoder)
	}
	q := ps.Gen.Day(6)[0]
	c1, err1 := dep.Optimize(q)
	c2, err2 := restored.Optimize(q)
	if err1 != nil || err2 != nil {
		t.Fatalf("optimize errors: %v / %v", err1, err2)
	}
	if c1.ChosenIdx != c2.ChosenIdx {
		t.Fatalf("restored deployment picks differently: %d vs %d", c1.ChosenIdx, c2.ChosenIdx)
	}
	for i := range c1.Estimates {
		if c1.Estimates[i] != c2.Estimates[i] {
			t.Fatalf("estimate %d differs after restore: %g vs %g", i, c1.Estimates[i], c2.Estimates[i])
		}
	}
}

func TestLatencyNoisierThanCost(t *testing.T) {
	_, ps := tinyProject(t, 9)
	tpl := ps.Gen.Templates[0]
	tpl.ParamChurn = 0
	q := tpl.Instantiate(ps.Rng("lat"), 0)
	p := ps.Explorer(0).DefaultPlan(q)
	opt := ps.ExecOptions(q)
	opt.NoiseSigma = 0.05
	var costs, lats []float64
	for i := 0; i < 40; i++ {
		rec := ps.Executor.Execute(p, 0, opt)
		costs = append(costs, rec.CPUCost)
		lats = append(lats, rec.LatencySec)
	}
	rsd := func(v []float64) float64 {
		mean := 0.0
		for _, x := range v {
			mean += x
		}
		mean /= float64(len(v))
		s := 0.0
		for _, x := range v {
			s += (x - mean) * (x - mean)
		}
		return math.Sqrt(s/float64(len(v))) / mean
	}
	if rsd(lats) <= rsd(costs) {
		t.Fatalf("latency RSD %.3f should exceed cost RSD %.3f (§3)", rsd(lats), rsd(costs))
	}
}

// TestDeployFromModelCorruptSnapshot pins the root-level corruption
// sentinel: a snapshot whose payload disagrees with its own config must
// surface as loam.ErrCorruptSnapshot through DeployFromModel's wrap, so
// callers can tell corruption from I/O failures without importing
// internal/predictor.
func TestDeployFromModelCorruptSnapshot(t *testing.T) {
	_, ps := tinyProject(t, 11)
	ps.RunDays(0, 6)
	dcfg := DefaultDeployConfig()
	dcfg.TrainDays = 5
	dcfg.TestDays = 1
	dcfg.Predictor.Epochs = 2
	dcfg.DomainPlans = 4
	dep, err := ps.Deploy(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dep.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	// Truncate the tensor list: same JSON shape, inconsistent payload.
	tampered := bytes.Replace(buf.Bytes(), []byte(`"params":[[`), []byte(`"params":[[9],[`), 1)
	_, err = ps.DeployFromModel(bytes.NewReader(tampered), 5, 1)
	if err == nil {
		t.Fatal("tampered snapshot should fail to restore")
	}
	if !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("want ErrCorruptSnapshot in the chain, got %v", err)
	}
	if !errors.Is(err, predictor.ErrCorruptSnapshot) {
		t.Fatalf("root re-export must alias the predictor sentinel, got %v", err)
	}
}
