package loam

import (
	"testing"

	"loam/internal/plan"
)

// TestPlanInvariantsAcrossWorkload fuzzes the optimizer+explorer across many
// random queries and checks structural invariants on every candidate plan —
// the class of bug a steering optimizer must never exhibit.
func TestPlanInvariantsAcrossWorkload(t *testing.T) {
	for _, seed := range []uint64{3, 17, 101} {
		sim := NewSimulation(seed, DefaultSimulationConfig())
		cfg := DefaultProjectConfig("fuzz")
		cfg.Archetype.NumTables = 25
		cfg.Workload.NumTemplates = 15
		cfg.Workload.MaxTables = 6
		ps := sim.AddProject(cfg)

		for _, tpl := range ps.Gen.Templates {
			q := tpl.Instantiate(ps.Rng("fuzz"), 2)
			cands := ps.Explorer(2).Candidates(q)
			for ci, c := range cands {
				checkPlanInvariants(t, seed, ci, c, q.Tables)
				// Every candidate must execute to a positive cost.
				rec := ps.Executor.Execute(c, 2, ps.ExecOptions(q))
				if rec.CPUCost <= 0 {
					t.Fatalf("seed %d cand %d: cost %g", seed, ci, rec.CPUCost)
				}
			}
		}
	}
}

func checkPlanInvariants(t *testing.T, seed uint64, ci int, p *plan.Plan, tables []string) {
	t.Helper()
	// 1. The plan scans exactly the query's tables.
	scanned := map[string]bool{}
	for _, tb := range p.Root.Tables() {
		scanned[tb] = true
	}
	if len(scanned) != len(tables) {
		t.Fatalf("seed %d cand %d: scans %d tables, query has %d", seed, ci, len(scanned), len(tables))
	}
	for _, tb := range tables {
		if !scanned[tb] {
			t.Fatalf("seed %d cand %d: missing table %s", seed, ci, tb)
		}
	}

	joins := 0
	p.Root.Walk(func(n *plan.Node) {
		// 2. Child-arity sanity per operator class.
		switch {
		case n.Op == plan.OpTableScan:
			if len(n.Children) != 0 {
				t.Fatalf("seed %d cand %d: scan with children", seed, ci)
			}
			if n.PartitionsRead < 1 {
				t.Fatalf("seed %d cand %d: scan reads %d partitions", seed, ci, n.PartitionsRead)
			}
		case n.Op.IsJoin():
			joins++
			if len(n.Children) != 2 {
				t.Fatalf("seed %d cand %d: join with %d children", seed, ci, len(n.Children))
			}
			if n.JoinForm == 0 {
				t.Fatalf("seed %d cand %d: join without form", seed, ci)
			}
		case n.Op.IsFilterLike():
			if n.Pred == nil {
				t.Fatalf("seed %d cand %d: filter without predicate", seed, ci)
			}
			if len(n.Children) != 1 {
				t.Fatalf("seed %d cand %d: filter arity %d", seed, ci, len(n.Children))
			}
		case n.Op.IsExchange():
			if len(n.Children) != 1 {
				t.Fatalf("seed %d cand %d: exchange arity %d", seed, ci, len(n.Children))
			}
		}
	})
	// 3. A left-deep tree over n tables has exactly n-1 joins.
	if joins != len(tables)-1 {
		t.Fatalf("seed %d cand %d: %d joins for %d tables", seed, ci, joins, len(tables))
	}

	// 4. Fingerprints survive clone; canonicalization is binary.
	if p.Clone().Root.Fingerprint() != p.Root.Fingerprint() {
		t.Fatalf("seed %d cand %d: clone changed fingerprint", seed, ci)
	}
	p.Root.Canonicalize().Walk(func(n *plan.Node) {
		if len(n.Children) > 2 {
			t.Fatalf("seed %d cand %d: canonical node with %d children", seed, ci, len(n.Children))
		}
	})
}
