// Steering: deploy LOAM over a join-heavy analytics project with degraded
// statistics (the paper's high-headroom regime) and compare steered vs
// default execution for a full test window, printing a per-query win/loss
// report in the style of the paper's §7.2.2.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"loam"
	"loam/internal/predictor"
	"loam/internal/stats"
)

func main() {
	sim := loam.NewSimulation(21, loam.DefaultSimulationConfig())

	cfg := loam.DefaultProjectConfig("analytics")
	cfg.Archetype.RowsLog10Mean = 5.4
	cfg.Workload.NumTemplates = 12
	cfg.Workload.QueriesPerDayMean = 8
	cfg.Workload.MinTables = 3
	cfg.Workload.MaxTables = 6
	cfg.Workload.PushDifficultProb = 0.45
	// Degraded statistics: the regime in which the native optimizer leaves
	// real headroom on the table (Challenge C2).
	cfg.StatsPolicy = stats.Policy{ColumnStatsProb: 0.2, FreshProb: 0.3, MaxStalenessDays: 25, NDVNoise: 0.8}
	ps := sim.AddProject(cfg)

	const days = 16
	ps.RunDays(0, days)

	dcfg := loam.DefaultDeployConfig()
	dcfg.TrainDays = 13
	dcfg.TestDays = 3
	// Deploy options: share the simulation's registry so the closing metrics
	// dump covers substrate, training and serving in one snapshot, and pick
	// the §5 mean-environment strategy explicitly.
	dep, err := ps.Deploy(dcfg,
		loam.WithStrategy(predictor.StrategyMeanEnv),
		loam.WithMetrics(sim.Telemetry()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed on %q: %d training plans, %d test queries\n",
		cfg.Name, dep.TrainSize, len(dep.TestSet))

	type outcome struct {
		id       string
		def, got float64
	}
	var results []outcome
	limit := 40
	for _, e := range dep.TestSet {
		if len(results) >= limit {
			break
		}
		choice, err := dep.Optimize(e.Query)
		if err != nil {
			log.Fatal(err)
		}
		got := ps.Executor.Flight(choice.Chosen, e.Query.Day, 3, ps.ExecOptions(e.Query))
		def := ps.Executor.Flight(choice.Candidates[0], e.Query.Day, 3, ps.ExecOptions(e.Query))
		results = append(results, outcome{id: e.Query.ID, def: def, got: got})
	}

	sort.Slice(results, func(i, j int) bool {
		return results[i].def-results[i].got < results[j].def-results[j].got
	})
	var speedups, slowdowns int
	var totalDef, totalGot float64
	fmt.Println("per-query (sorted slowdown -> speedup):")
	for _, r := range results {
		delta := r.def - r.got
		tag := " "
		switch {
		case delta > 0.02*r.def:
			tag = "+"
			speedups++
		case delta < -0.02*r.def:
			tag = "-"
			slowdowns++
		}
		totalDef += r.def
		totalGot += r.got
		fmt.Printf("  %s %-30s default=%10.0f steered=%10.0f delta=%+10.0f\n", tag, r.id, r.def, r.got, delta)
	}
	fmt.Printf("\n%d speedups, %d slowdowns over %d queries\n", speedups, slowdowns, len(results))
	if totalDef > 0 {
		fmt.Printf("aggregate CPU cost: steered %.0f vs default %.0f (%.1f%% saved)\n",
			totalGot, totalDef, (1-totalGot/totalDef)*100)
	}

	fmt.Println("\ntelemetry snapshot (deterministic):")
	if err := sim.Metrics().WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
