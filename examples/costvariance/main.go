// Cost variance: reproduce the paper's Challenge-C1 phenomenology on the
// simulated cluster — an identical recurring query fluctuates in CPU cost
// with machine load (Fig. 1's relative std-dev inset, Fig. 5's load→cost
// response, and App. Fig. 15's log-normal shape).
package main

import (
	"fmt"
	"sort"

	"loam"
	"loam/internal/cluster"
	"loam/internal/exec"
	"loam/internal/theory"
)

func main() {
	sim := loam.NewSimulation(5, loam.DefaultSimulationConfig())
	cfg := loam.DefaultProjectConfig("variance")
	cfg.Workload.NumTemplates = 10
	ps := sim.AddProject(cfg)

	// Relative std-dev across recurring templates (Fig. 1 inset).
	fmt.Println("recurring-query cost variability (30 executions each):")
	type row struct {
		id  string
		rsd float64
	}
	var rows []row
	for _, tpl := range ps.Gen.Templates {
		tpl.ParamChurn = 0 // identical recurring query
		q := tpl.Instantiate(ps.Rng("var"), 1)
		p := ps.Explorer(1).DefaultPlan(q)
		opt := exec.DefaultOptions()
		opt.NoiseSigma = q.NoiseSigma
		costs := make([]float64, 30)
		for i := range costs {
			costs[i] = ps.Executor.Execute(p, 1, opt).CPUCost
		}
		_, rsd := theory.Moments(costs)
		rows = append(rows, row{id: tpl.ID, rsd: rsd})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].rsd < rows[j].rsd })
	for _, r := range rows {
		fmt.Printf("  %-22s RSD %5.1f%% %s\n", r.id, r.rsd*100, bar(r.rsd))
	}

	// Load→cost response for one query (Fig. 5).
	tpl := ps.Gen.Templates[0]
	q := tpl.Instantiate(ps.Rng("var2"), 1)
	p := ps.Explorer(1).DefaultPlan(q)
	opt := exec.DefaultOptions()
	opt.NoiseSigma = 0.05
	var idles, costs []float64
	for i := 0; i < 80; i++ {
		rec := ps.Executor.Execute(p, 1, opt)
		var env cluster.Metrics
		for _, se := range rec.StageEnvs {
			env = env.Add(se)
		}
		env = env.Scale(1 / float64(len(rec.StageEnvs)))
		idles = append(idles, env.CPUIdle)
		costs = append(costs, rec.CPUCost)
	}
	fmt.Println("\ncost vs CPU_IDLE (binned means — roughly linear, decreasing):")
	const bins = 5
	lo, hi := idles[0], idles[0]
	for _, v := range idles {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	sum := make([]float64, bins)
	cnt := make([]int, bins)
	for i, v := range idles {
		b := int(float64(bins) * (v - lo) / (hi - lo + 1e-9))
		if b >= bins {
			b = bins - 1
		}
		sum[b] += costs[i]
		cnt[b]++
	}
	for b := 0; b < bins; b++ {
		mid := lo + (hi-lo)*(float64(b)+0.5)/bins
		if cnt[b] == 0 {
			continue
		}
		fmt.Printf("  idle≈%.2f  cost≈%8.0f\n", mid, sum[b]/float64(cnt[b]))
	}

	// Log-normal shape (Fig. 15).
	fit, err := theory.FitLogNormal(costs)
	if err != nil {
		fmt.Println("fit error:", err)
		return
	}
	stat, pValue := theory.KSTest(costs, fit)
	fmt.Printf("\nlog-normal fit: mu=%.3f sigma=%.3f  KS=%.3f p=%.3f\n", fit.Mu, fit.Sigma, stat, pValue)
}

func bar(v float64) string {
	n := int(v * 80)
	if n > 40 {
		n = 40
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
