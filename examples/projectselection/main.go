// Project selection: run LOAM's two-stage selector (§6) over a fleet of
// heterogeneous projects — the rule-based Filter excludes projects with
// training challenges, the learned Ranker prioritizes the rest by estimated
// improvement space, and the top-N are picked for deployment.
package main

import (
	"fmt"
	"sort"

	"loam"
	"loam/internal/exec"
	"loam/internal/selector"
	"loam/internal/simrand"
	"loam/internal/stats"
	"loam/internal/theory"
	"loam/internal/warehouse"
	"loam/internal/workload"
)

func main() {
	sim := loam.NewSimulation(31, loam.DefaultSimulationConfig())
	rng := simrand.New(99)

	// A small fleet with varied volumes, churn and statistics quality.
	const fleetSize = 12
	var fleet []*loam.ProjectSim
	for i := 0; i < fleetSize; i++ {
		pr := rng.DeriveN("fleet", i)
		arch := warehouse.DefaultArchetype()
		arch.Name = fmt.Sprintf("proj%02d", i)
		arch.NumTables = 15 + pr.Intn(40)
		arch.TempTableFrac = pr.Uniform(0, 0.6)
		wl := workload.DefaultConfig()
		wl.NumTemplates = 4 + pr.Intn(6)
		wl.QueriesPerDayMean = pr.Uniform(1, 12)
		pol := stats.Policy{
			ColumnStatsProb:  pr.Uniform(0.1, 0.9),
			FreshProb:        pr.Uniform(0.2, 0.9),
			MaxStalenessDays: 20,
			NDVNoise:         pr.Uniform(0.2, 0.8),
		}
		ps := sim.AddProject(loam.ProjectConfig{Name: arch.Name, Archetype: arch, Workload: wl, StatsPolicy: pol})
		ps.RunDays(0, 6)
		fleet = append(fleet, ps)
	}

	// Stage 1 — rule-based Filter (App. D.1).
	fcfg := selector.ScaledFilterConfig(4)
	var passed []*loam.ProjectSim
	fmt.Println("stage 1 — rule-based filter:")
	for _, ps := range fleet {
		ws := selector.ComputeStats(ps.Repo.All(), ps.Project, 30)
		ok, failed := fcfg.Pass(ws)
		status := "PASS"
		if !ok {
			status = fmt.Sprintf("FAIL %v", failed)
		}
		fmt.Printf("  %-8s n_query=%5.1f inc=%4.2f stable=%4.2f -> %s\n",
			ps.Config.Name, ws.QueriesPerDay, ws.IncRatio, ws.StableRatio, status)
		if ok {
			passed = append(passed, ps)
		}
	}

	// Stage 2 — learned Ranker. Train it on half the passed projects using
	// their measured improvement space, rank the other half.
	var samples []selector.RankerSample
	scores := map[string]float64{}
	truth := map[string]float64{}
	for i, ps := range passed {
		projSamples, improvement := measure(ps)
		truth[ps.Config.Name] = improvement
		if i < len(passed)/2 {
			samples = append(samples, projSamples...)
			continue
		}
		scores[ps.Config.Name] = 0 // ranked below
	}
	ranker := selector.TrainRanker(samples)
	// Score in sorted name order: measure() executes plans on the shared
	// cluster, so map-order iteration would leak into simulated state.
	held := make([]string, 0, len(scores))
	for name := range scores {
		held = append(held, name)
	}
	sort.Strings(held)
	for _, name := range held {
		ps := sim.Project(name)
		feats := make([][]float64, 0)
		projSamples, _ := measure(ps)
		for _, s := range projSamples {
			feats = append(feats, s.Features)
		}
		scores[name] = ranker.ScoreWorkload(feats)
	}

	fmt.Println("\nstage 2 — learned ranker (held-out projects):")
	ranked := selector.RankProjects(scores)
	for i, name := range ranked {
		fmt.Printf("  #%d %-8s estimated D(Md)=%.3f  measured=%.3f\n", i+1, name, scores[name], truth[name])
	}
	top := selector.TopN(ranked, 2)
	fmt.Printf("\ndeploy LOAM on top-%d: %v\n", len(top), top)
}

// measure samples a project's queries and computes per-query Ranker features
// plus the measured improvement space D(M_d).
func measure(ps *loam.ProjectSim) ([]selector.RankerSample, float64) {
	entries := ps.Repo.All()
	stride := len(entries)/6 + 1
	var samples []selector.RankerSample
	sum, count := 0.0, 0
	for i := 0; i < len(entries); i += stride {
		e := entries[i]
		cands := ps.Explorer(e.Record.Day).Candidates(e.Query)
		dists := make([]theory.LogNormal, len(cands))
		opt := exec.DefaultOptions()
		for ci, c := range cands {
			costs := make([]float64, 3)
			for r := range costs {
				costs[r] = ps.Executor.Execute(c, e.Record.Day, opt).CPUCost
			}
			if d, err := theory.FitLogNormal(costs); err == nil {
				dists[ci] = d
			}
		}
		oracle := theory.ExpectedMin(dists)
		if oracle <= 0 {
			continue
		}
		imp := theory.ExpectedDeviance(dists, 0) / oracle
		rows := func(t string) float64 {
			if tb := ps.Project.Table(t); tb != nil {
				return float64(tb.RowsAt(e.Record.Day))
			}
			return 0
		}
		samples = append(samples, selector.RankerSample{
			Features:    selector.Features(e.Record.Plan, e.Record.CPUCost, rows),
			Improvement: imp,
		})
		sum += imp
		count++
	}
	if count == 0 {
		return samples, 0
	}
	return samples, sum / float64(count)
}
