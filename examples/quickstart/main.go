// Quickstart: stand up a simulated warehouse project, build query history,
// train a LOAM deployment, and steer one query.
package main

import (
	"context"
	"fmt"
	"log"

	"loam"
)

func main() {
	// One shared multi-tenant cluster, one project.
	sim := loam.NewSimulation(7, loam.DefaultSimulationConfig())
	cfg := loam.DefaultProjectConfig("quickstart")
	cfg.Workload.NumTemplates = 10
	cfg.Workload.QueriesPerDayMean = 6
	ps := sim.AddProject(cfg)

	// Simulate 10 production days: the native optimizer plans each query,
	// the cluster executes it, the repository logs it.
	ps.RunDays(0, 10)
	fmt.Printf("history: %d executions\n", ps.Repo.Len())

	// Train the adaptive cost predictor from the first 8 days.
	dcfg := loam.DefaultDeployConfig()
	dcfg.TrainDays = 8
	dcfg.TestDays = 2
	dcfg.Predictor.Epochs = 6
	dep, err := ps.Deploy(dcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d plans in %.1fs (%.1f MB)\n",
		dep.TrainSize, dep.Predictor().Metrics().TrainSeconds,
		float64(dep.Predictor().Metrics().ModelBytes)/1e6)

	// Steer one fresh query: explore candidates, predict costs under the
	// average-case environment, execute the cheapest.
	q := ps.Gen.Day(10)[0]
	choice, err := dep.Optimize(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %s: %d candidates\n", q.ID, len(choice.Candidates))
	for i, est := range choice.Estimates {
		marker := "  "
		if i == choice.ChosenIdx {
			marker = "->"
		}
		fmt.Printf("%s candidate %d est=%.0f knobs=%v\n", marker, i, est, choice.Candidates[i].Knobs)
	}
	rec := dep.ExecuteChoice(choice)
	fmt.Printf("executed: CPU cost %.0f (latency %.0fs across %d stages)\n",
		rec.CPUCost, rec.LatencySec, len(rec.StageCosts))

	// Fleet serving: put the same deployment behind the sharded registry.
	// Route is the multi-tenant entry point — admission control, the
	// recurring-query lane and the global plan-cache budget all apply here.
	reg := sim.NewFleet(loam.DefaultFleetConfig())
	if err := reg.Register("quickstart", dep); err != nil {
		log.Fatal(err)
	}
	routed, err := reg.Route(context.Background(), "quickstart", ps.Gen.Day(10)[1])
	if err != nil {
		log.Fatal(err)
	}
	budget := reg.Budget()
	fmt.Printf("routed: origin=%s cache %d/%d entries granted\n",
		routed.Origin, budget.Entries, budget.Granted)
}
