package loam

import (
	"context"
	"math"
	"testing"
)

// snapCounter reads one counter out of a deployment's metrics snapshot,
// failing the test if the instrument was never registered.
func snapCounter(t *testing.T, d *Deployment, name string) int64 {
	t.Helper()
	for _, c := range d.Metrics().Counters {
		if c.Name == name {
			return c.Value
		}
	}
	t.Fatalf("counter %s not in snapshot", name)
	return 0
}

// TestOptimizeBatchMicroBatchMatchesPlain: a sequential OptimizeBatch on a
// WithMicroBatch deployment — whole chunks scored as one fused cost-head
// pass — returns choice-for-choice, bit-for-bit the same results as an
// identically seeded deployment without coalescing, while the coalescing
// telemetry proves the fused path actually served the traffic.
func TestOptimizeBatchMicroBatchMatchesPlain(t *testing.T) {
	const n, window = 12, 4
	plain, pqs := guardedDeployment(t, 61, n)
	fused, fqs := guardedDeployment(t, 61, n, WithMicroBatch(window))

	want, err := plain.OptimizeBatch(context.Background(), pqs, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fused.OptimizeBatch(context.Background(), fqs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Origin != OriginLearned {
			t.Fatalf("query %d: plain path not learned (%v)", i, w.Origin)
		}
		if g.Origin != w.Origin || g.ChosenIdx != w.ChosenIdx {
			t.Fatalf("query %d: fused chose %d (%v), plain %d (%v)",
				i, g.ChosenIdx, g.Origin, w.ChosenIdx, w.Origin)
		}
		if len(g.Estimates) != len(w.Estimates) {
			t.Fatalf("query %d: %d estimates vs %d", i, len(g.Estimates), len(w.Estimates))
		}
		for j := range w.Estimates {
			if math.Float64bits(g.Estimates[j]) != math.Float64bits(w.Estimates[j]) {
				t.Fatalf("query %d estimate %d: fused %v, plain %v",
					i, j, g.Estimates[j], w.Estimates[j])
			}
		}
	}

	// 12 healthy queries through a window of 4: three deterministic fused
	// flushes carrying every request, observed on the batch-size histogram.
	if f := snapCounter(t, fused, "guard.coalesce.flushes"); f != n/window {
		t.Fatalf("coalesce flushes = %d, want %d", f, n/window)
	}
	if r := snapCounter(t, fused, "guard.coalesce.requests"); r != n {
		t.Fatalf("coalesce requests = %d, want %d", r, n)
	}
	seen := false
	for _, h := range fused.Metrics().Histograms {
		if h.Name == "serve.batch.coalesced" {
			seen = true
			if h.Count != n/window || h.Min != window || h.Max != window {
				t.Fatalf("serve.batch.coalesced: count=%d min=%v max=%v, want %d full windows",
					h.Count, h.Min, h.Max, n/window)
			}
		}
	}
	if !seen {
		t.Fatal("serve.batch.coalesced histogram not in snapshot")
	}
	if f := snapCounter(t, plain, "guard.coalesce.flushes"); f != 0 {
		t.Fatalf("uncoalesced deployment recorded %d flushes", f)
	}
}

// TestQuantizedMicroBatchSameChoices is the end-to-end argmin-preservation
// check: quantized scoring stacked on micro-batching still picks exactly the
// plans the plain f64 deployment picks, and the quant accounting shows the
// fused batches really went through the quantized tiers.
func TestQuantizedMicroBatchSameChoices(t *testing.T) {
	const n = 12
	plain, pqs := guardedDeployment(t, 62, n)
	quant, qqs := guardedDeployment(t, 62, n, WithMicroBatch(4),
		WithScoringConfig(ScoringConfig{Quantized: true}))

	want, err := plain.OptimizeBatch(context.Background(), pqs, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := quant.OptimizeBatch(context.Background(), qqs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.Origin != OriginLearned || g.ChosenIdx != w.ChosenIdx {
			t.Fatalf("query %d: quantized chose %d (%v), plain %d", i, g.ChosenIdx, g.Origin, w.ChosenIdx)
		}
		// Quantized estimates are certified-argmin values, not bit-copies of
		// f64; they must still be finite, positive costs for every candidate.
		if len(g.Estimates) != len(w.Estimates) {
			t.Fatalf("query %d: %d estimates vs %d", i, len(g.Estimates), len(w.Estimates))
		}
		for j, e := range g.Estimates {
			if !(e > 0) || math.IsInf(e, 0) {
				t.Fatalf("query %d estimate %d: %v not a finite positive cost", i, j, e)
			}
		}
	}

	batches := snapCounter(t, quant, "predictor.quant.batches")
	if batches == 0 {
		t.Fatal("quantized deployment scored no batches through the quant path")
	}
	int8s := snapCounter(t, quant, "predictor.quant.int8")
	f32s := snapCounter(t, quant, "predictor.quant.f32")
	falls := snapCounter(t, quant, "predictor.quant.fallbacks")
	if batches != int8s+f32s+falls {
		t.Fatalf("quant accounting: %d batches != %d int8 + %d f32 + %d fallbacks",
			batches, int8s, f32s, falls)
	}
	if f := snapCounter(t, quant, "guard.coalesce.flushes"); f != 3 {
		t.Fatalf("coalesce flushes = %d, want 3", f)
	}
}
