package loam

import (
	"bytes"
	"sync"
	"testing"
)

// lifecycleHarness deploys a tiny project whose serving guard is tuned to
// quarantine quickly (a near-zero divergence band makes every learned sample
// adverse), so drift→retrain→promote→rollback trajectories run in a handful
// of serves. The drift detector is parked out of reach: the sentinel is the
// only drift trigger, which keeps each test's trajectory easy to reason
// about.
func lifecycleHarness(t *testing.T, seed uint64, lcfg LifecycleConfig, opts ...DeployOption) (*ProjectSim, *Deployment) {
	t.Helper()
	sim := NewSimulation(seed, DefaultSimulationConfig())
	cfg := DefaultProjectConfig("lc")
	cfg.Archetype.NumTables = 12
	cfg.Workload.NumTemplates = 8
	cfg.Workload.QueriesPerDayMean = 8
	ps := sim.AddProject(cfg)
	ps.RunDays(0, 8)

	gcfg := DefaultGuardConfig()
	gcfg.DivergenceBand = 0.01
	gcfg.DivergenceWindow = 4
	gcfg.QuarantineWindows = 1

	dcfg := DefaultDeployConfig()
	dcfg.TrainDays = 6
	dcfg.TestDays = 2
	dcfg.Predictor.Epochs = 3
	dcfg.DomainPlans = 16
	dep, err := ps.Deploy(dcfg, append(opts, WithGuardConfig(gcfg), WithLifecycle(lcfg))...)
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	return ps, dep
}

// quickLifecycleConfig is a lifecycle tuned to react within a short serve
// stream: retrains as soon as 8 observations exist, accepts generously
// (shadow scoring on a tiny drifting window is noisy), and parks the drift
// detector so the guard sentinel alone drives the loop.
func quickLifecycleConfig() LifecycleConfig {
	lcfg := DefaultLifecycleConfig()
	lcfg.MinFeedback = 8
	lcfg.RetrainWindow = 64
	lcfg.ShadowWindow = 32
	lcfg.AcceptTolerance = 10
	lcfg.Probation = 16
	lcfg.DomainPlans = 8
	lcfg.Drift = DriftConfig{Window: 1 << 20, Threshold: 1e9, Windows: 1 << 20}
	return lcfg
}

// serveDay optimizes and executes one generated day of queries, failing the
// test on any serve error (the lifecycle must never cost availability).
func serveDay(t *testing.T, ps *ProjectSim, dep *Deployment, day int) {
	t.Helper()
	for _, q := range ps.Gen.Day(day) {
		c, err := dep.Optimize(q)
		if err != nil {
			t.Fatalf("optimize day %d: %v", day, err)
		}
		dep.ExecuteChoice(c)
	}
}

func TestLifecycleDriftRetrainPromotes(t *testing.T) {
	ps, dep := lifecycleHarness(t, 31, quickLifecycleConfig())
	lc := dep.Lifecycle()
	if lc == nil {
		t.Fatal("lifecycle not attached")
	}
	if v := lc.Version(); v != 1 {
		t.Fatalf("initial version %d", v)
	}
	incumbent := dep.Predictor()

	// Serve query-by-query and stop at the first promotion: the tiny
	// divergence band keeps indicting whatever model serves, so left
	// running the loop cycles promote→rollback→promote indefinitely.
serve:
	for day := 8; day < 14; day++ {
		for _, q := range ps.Gen.Day(day) {
			c, err := dep.Optimize(q)
			if err != nil {
				t.Fatalf("optimize day %d: %v", day, err)
			}
			dep.ExecuteChoice(c)
			if lc.Version() != 1 {
				break serve
			}
		}
	}
	if v := lc.Version(); v != 2 {
		t.Fatalf("expected promotion to version 2, got %d", v)
	}
	if dep.Predictor() == incumbent {
		t.Fatal("promotion did not swap the serving predictor")
	}
	if !lc.InProbation() {
		t.Fatal("freshly promoted model should be in probation")
	}
	reg := dep.Telemetry()
	if n := reg.Counter("lifecycle.promote").Value(); n != 1 {
		t.Fatalf("lifecycle.promote = %d", n)
	}
	if n := reg.Counter("lifecycle.drift.signals").Value(); n == 0 {
		t.Fatal("no drift signals counted")
	}
	if n := reg.Counter("guard.quarantine.released").Value(); n == 0 {
		t.Fatal("promotion should release the sentinel quarantine")
	}
	if dep.Guard().Quarantined() {
		t.Fatal("still quarantined after promotion")
	}
	if lc.FeedbackTotal() == 0 || lc.FeedbackLen() == 0 {
		t.Fatal("feedback store not harvesting")
	}
}

func TestLifecycleSentinelTripDuringProbationRollsBack(t *testing.T) {
	ps, dep := lifecycleHarness(t, 31, quickLifecycleConfig())
	lc := dep.Lifecycle()
	incumbent := dep.Predictor()

	// Serve until the first promotion, then keep serving: the tiny
	// divergence band indicts the promoted model too, and the next sentinel
	// trip inside probation must roll back to the original model.
	rolledBack := false
	for day := 8; day < 20; day++ {
		serveDay(t, ps, dep, day)
		if dep.Telemetry().Counter("lifecycle.rollback").Value() > 0 {
			rolledBack = true
			break
		}
	}
	if !rolledBack {
		t.Fatal("no rollback within the serve budget")
	}
	if v := lc.Version(); v != 1 {
		t.Fatalf("rollback should restore version 1, got %d", v)
	}
	if dep.Predictor() != incumbent {
		t.Fatal("rollback did not restore the original predictor")
	}
	if lc.InProbation() {
		t.Fatal("probation should end with the rollback")
	}
	if dep.Guard().Quarantined() {
		t.Fatal("rollback should restart the guard unquarantined")
	}
}

// TestLifecycleRetrainFaultKeepsIncumbent is the chaos scenario: a retrain
// that fails mid-promote (injected) must leave the incumbent model serving
// — no swap, no version change, no availability loss.
func TestLifecycleRetrainFaultKeepsIncumbent(t *testing.T) {
	inj := NewFaultInjector(7, FaultInjectorConfig{RetrainFailRate: 1})
	ps, dep := lifecycleHarness(t, 31, quickLifecycleConfig(), WithFaultInjector(inj))
	lc := dep.Lifecycle()
	incumbent := dep.Predictor()

	for day := 8; day < 12; day++ {
		serveDay(t, ps, dep, day)
	}
	reg := dep.Telemetry()
	if n := reg.Counter("lifecycle.retrain.failed").Value(); n == 0 {
		t.Fatal("injected retrain failures never fired")
	}
	if n := reg.Counter("lifecycle.promote").Value(); n != 0 {
		t.Fatalf("a failed retrain must not promote, got %d promotions", n)
	}
	if v := lc.Version(); v != 1 {
		t.Fatalf("version moved to %d despite failed retrains", v)
	}
	if dep.Predictor() != incumbent {
		t.Fatal("serving predictor changed despite failed retrains")
	}
	// Availability: serveDay fails the test on any Optimize error, so
	// reaching here means every query was served (from the quarantine
	// fallback once the sentinel tripped).
	if n := reg.Counter("guard.fallback.native").Value(); n == 0 {
		t.Fatal("expected quarantined serving to fall back to native plans")
	}
}

// TestLifecycleSwapUnderConcurrentServing races promotions against parallel
// serving: concurrent Optimize calls must keep returning plans while the
// lifecycle hot-swaps models underneath them (run with -race).
func TestLifecycleSwapUnderConcurrentServing(t *testing.T) {
	ps, dep := lifecycleHarness(t, 31, quickLifecycleConfig())

	var wg sync.WaitGroup
	queries := ps.Gen.Day(8)
	for day := 9; day < 13; day++ {
		queries = append(queries, ps.Gen.Day(day)...)
	}
	// One executor goroutine drives the lifecycle (ExecuteChoice harvests
	// feedback and reacts); three reader goroutines hammer Optimize on a
	// disjoint query slice concurrently with the swaps.
	split := len(queries) / 4
	exec, readers := queries[:split], queries[split:]
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, q := range exec {
			c, err := dep.Optimize(q)
			if err != nil {
				t.Errorf("executor optimize: %v", err)
				return
			}
			dep.ExecuteChoice(c)
		}
	}()
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(readers); i += 3 {
				c, err := dep.Optimize(readers[i])
				if err != nil {
					t.Errorf("reader optimize: %v", err)
					return
				}
				if c.Chosen == nil {
					t.Error("nil plan under concurrent swap")
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestLifecycleTrajectoryDeterministic runs the same seeded drift→retrain→
// promote→rollback scenario twice and requires byte-identical telemetry
// snapshots — the lifecycle must not introduce any order- or wall-clock-
// dependent state.
func TestLifecycleTrajectoryDeterministic(t *testing.T) {
	run := func() ([]byte, int) {
		ps, dep := lifecycleHarness(t, 31, quickLifecycleConfig())
		for day := 8; day < 16; day++ {
			serveDay(t, ps, dep, day)
		}
		var buf bytes.Buffer
		if err := dep.Metrics().WriteText(&buf); err != nil {
			t.Fatalf("snapshot: %v", err)
		}
		return buf.Bytes(), dep.Lifecycle().Version()
	}
	a, va := run()
	b, vb := run()
	if va != vb {
		t.Fatalf("version diverged: %d vs %d", va, vb)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed lifecycle runs snapshot differently:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}
