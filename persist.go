package loam

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"loam/internal/atomicio"
	"loam/internal/durable"
	"loam/internal/encoding"
	"loam/internal/predictor"
)

// This file is the deployment's durability seam: the only place serving code
// talks to internal/durable. Deploy-time it roots the store and commits the
// initial checkpoint; at runtime the lifecycle hooks call back in here to
// checkpoint every model transition and journal every feedback observation;
// RestoreDeployment is the warm-restore path that rebuilds a deployment at
// its last durable version. See DESIGN.md "Durability & recovery contract".
//
// Runtime persistence is fail-open: a checkpoint or journal write that
// errors leaves serving untouched (the durable.errors counter records it),
// because losing a recovery point is strictly better than losing the serving
// path. Injected crashes are panics, not errors — they propagate, which is
// exactly what the kill-point harness wants.

// durableState bundles a deployment's store and journal. Mutation happens
// only under the lifecycle mutex (or before serving starts), matching the
// store's single-writer contract.
type durableState struct {
	store *durable.Store
	jour  *durable.Journal
}

// checkpointState is one lifecycle transition's worth of durable state: the
// event, the lineage counters, the serving model, and — during probation —
// the rollback insurance.
type checkpointState struct {
	event   string
	version int
	parent  int
	next    int
	cur     *predictor.Predictor
	// probation/prev/prevVer carry rollback insurance; prev nil outside
	// probation.
	probation int
	prev      *predictor.Predictor
	prevVer   int
	// resetJournal discards the feedback journal with this checkpoint —
	// set exactly when the transition resets the drift detector, so the
	// journal always equals the detector's live window.
	resetJournal bool
}

// snapshotBytes serializes a predictor carrying its lifecycle version.
func snapshotBytes(p *predictor.Predictor, version int) ([]byte, error) {
	p.SetModelVersion(version)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// initDurable roots the deployment's durable store for a fresh deploy (or a
// model restore via DeployFromModel) and commits the initial checkpoint. The
// journal starts empty — matching the fresh drift detector.
func (d *Deployment) initDurable(o deployOptions) error {
	store, err := durable.Open(o.durableDir, o.durableFS)
	if err != nil {
		return err
	}
	store.Instrument(o.metrics)
	jour, err := store.Journal()
	if err != nil {
		return err
	}
	d.dur = &durableState{store: store, jour: jour}
	cs := checkpointState{
		event:        durable.EventDeploy,
		version:      1,
		next:         2,
		cur:          d.pred.Load(),
		resetJournal: true,
	}
	if d.lc != nil {
		cs.version, cs.next = d.lc.version, d.lc.next
	}
	return d.persistCheckpoint(cs)
}

// persistCheckpoint writes one durable recovery point, in the ordering that
// makes the manifest swap the commit point: snapshot files first, then the
// journal reset (when the detector window resets), then the manifest. A
// crash between any two steps recovers to either the old checkpoint with its
// journal intact or the new one — never a mix.
func (d *Deployment) persistCheckpoint(cs checkpointState) error {
	if d.dur == nil {
		return nil
	}
	data, err := snapshotBytes(cs.cur, cs.version)
	if err != nil {
		return fmt.Errorf("durable checkpoint %s: %w", cs.event, err)
	}
	name, sum, err := d.dur.store.PutSnapshot(cs.version, data)
	if err != nil {
		return err
	}
	man := durable.Manifest{
		Version:     cs.version,
		Parent:      cs.parent,
		Next:        cs.next,
		Event:       cs.event,
		Snapshot:    name,
		SnapshotSum: sum,
		Probation:   cs.probation,
	}
	if cs.prev != nil {
		prevData, err := snapshotBytes(cs.prev, cs.prevVer)
		if err != nil {
			return fmt.Errorf("durable checkpoint %s: %w", cs.event, err)
		}
		prevName, prevSum, err := d.dur.store.PutSnapshot(cs.prevVer, prevData)
		if err != nil {
			return err
		}
		man.PrevVersion, man.PrevSnapshot, man.PrevSum = cs.prevVer, prevName, prevSum
	}
	if cs.resetJournal {
		if err := d.dur.jour.Reset(); err != nil {
			return err
		}
	}
	return d.dur.store.Commit(man)
}

// persistProbationClear checkpoints a promoted model surviving probation:
// the manifest drops its rollback insurance, so the predecessor snapshot is
// collected. The journal keeps running — clearing probation does not reset
// the drift detector's window. Callers hold lc.mu.
func (lc *Lifecycle) persistProbationClear() {
	if lc.d.dur == nil {
		return
	}
	parent := 0
	if m := lc.d.dur.store.Manifest(); m != nil {
		parent = m.Parent
	}
	// Fail-open, as every runtime checkpoint.
	_ = lc.d.persistCheckpoint(checkpointState{
		event:   durable.EventProbationClear,
		version: lc.version,
		parent:  parent,
		next:    lc.next,
		cur:     lc.d.pred.Load(),
	})
}

// journalRecord is one persisted feedback observation: the serving-time
// estimate and the executed cost, exactly what the drift detector consumes.
// Non-finite values ride as null (JSON cannot encode NaN) and replay as NaN,
// which the detector treats the same way it did live.
type journalRecord struct {
	Predicted *float64 `json:"p"`
	Actual    *float64 `json:"a"`
}

// finitePtr boxes v for JSON, mapping non-finite values to null.
func finitePtr(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

// unbox reverses finitePtr.
func unbox(p *float64) float64 {
	if p == nil {
		return math.NaN()
	}
	return *p
}

// journalObservation appends one feedback observation to the durable
// journal. Fail-open: an append error is absorbed (and counted by the
// journal's telemetry); the observation still feeds the live detector.
func (d *Deployment) journalObservation(predicted, actual float64) {
	if d.dur == nil {
		return
	}
	payload, err := json.Marshal(journalRecord{
		Predicted: finitePtr(predicted),
		Actual:    finitePtr(actual),
	})
	if err != nil {
		return
	}
	// The append either lands durably, fails (journal telemetry counts it),
	// or panics on an injected crash — serving never blocks on it.
	_ = d.dur.jour.Append(payload)
}

// RestoreDeployment rebuilds a deployment from the durable store at dir —
// the crash-recovery path. The serving model is loaded from the manifest's
// checksummed snapshot; with a lifecycle attached (WithLifecycle), the
// lineage counters resume from the manifest, a restore that lands
// mid-probation re-arms the rollback insurance with its full stored budget,
// and the feedback journal replays through a fresh drift detector so the
// detector resumes its real window. The in-memory feedback store is NOT
// persisted — it refills from live traffic, and MinFeedback gates the first
// post-restore retrain until it has. Guard state (breaker, quarantine) always
// restarts clean. trainDays/testDays select the validation window as in
// DeployFromModel; opts work as in Deploy, with the durable store forced to
// dir. Restoring never commits a new checkpoint: a restart is not a lifecycle
// transition.
func (ps *ProjectSim) RestoreDeployment(dir string, trainDays, testDays int, opts ...DeployOption) (*Deployment, error) {
	o := resolveDeployOptions(opts)
	o.durableDir = dir
	store, err := durable.Open(dir, o.durableFS)
	if err != nil {
		return nil, fmt.Errorf("restore %s: %w", ps.Config.Name, err)
	}
	man := store.Manifest()
	if man == nil {
		return nil, fmt.Errorf("restore %s: no committed checkpoint at %s", ps.Config.Name, dir)
	}
	pred, err := ps.loadSnapshotPredictor(store, man.Snapshot, man.SnapshotSum, o)
	if err != nil {
		return nil, err
	}
	store.Instrument(o.metrics)
	jour, err := store.Journal()
	if err != nil {
		return nil, fmt.Errorf("restore %s: %w", ps.Config.Name, err)
	}

	train, test := ps.Repo.Split(trainDays, testDays, 0)
	d := &Deployment{
		ProjectSim:   ps,
		Encoder:      encoding.NewEncoder(pred.EncoderConfig()),
		Strategy:     o.strategy,
		TrainSize:    len(train),
		TestSet:      test,
		planCacheCap: o.planCache,
		inj:          o.injector,
		tel:          o.metrics,
		obs:          newServingTelemetry(o.metrics),
	}
	d.governedCap.Store(-1)
	d.pred.Store(pred)
	d.grd = ps.newGuard(pred, o)
	d.attachLifecycle(o)
	d.dur = &durableState{store: store, jour: jour}
	if d.lc != nil {
		if err := d.lc.resume(store, man, jour, ps, o); err != nil {
			return nil, fmt.Errorf("restore %s: %w", ps.Config.Name, err)
		}
	}
	store.NoteRestore()
	return d, nil
}

// loadSnapshotPredictor reads and deserializes one checksummed snapshot.
func (ps *ProjectSim) loadSnapshotPredictor(store *durable.Store, name string, sum uint64, o deployOptions) (*predictor.Predictor, error) {
	data, err := store.ReadSnapshot(name, sum)
	if err != nil {
		return nil, fmt.Errorf("restore %s: %w", ps.Config.Name, err)
	}
	pred, err := predictor.Load(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("restore %s: snapshot %s: %w", ps.Config.Name, name, err)
	}
	pred.Instrument(o.metrics)
	pred.EnablePlanCache(o.planCache)
	return pred, nil
}

// resume re-arms a freshly attached lifecycle from the manifest: lineage
// counters, mid-probation rollback insurance, and the drift detector's
// window replayed from the journal. A drift signal that fires during replay
// leaves the retrain pending, exactly as a live signal would.
func (lc *Lifecycle) resume(store *durable.Store, man *durable.Manifest, jour *durable.Journal, ps *ProjectSim, o deployOptions) error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.version, lc.next = man.Version, man.Next
	lc.tel.modelVersion.Set(float64(man.Version))
	if man.Probation > 0 && man.PrevSnapshot != "" {
		prev, err := ps.loadSnapshotPredictor(store, man.PrevSnapshot, man.PrevSum, o)
		if err != nil {
			return err
		}
		lc.prev, lc.prevVer = prev, man.PrevVersion
		// The full stored budget re-arms: per-observation decrements are
		// deliberately not persisted, so a crash loop cannot bleed a bad
		// model's probation away one restart at a time.
		lc.probationLeft = man.Probation
	}
	fired := false
	err := jour.Replay(func(payload []byte) error {
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("%w: journal record: %v", durable.ErrCorruptStore, err)
		}
		if lc.det.Observe(unbox(rec.Predicted), unbox(rec.Actual)) {
			fired = true
		}
		return nil
	})
	if err != nil {
		return err
	}
	lc.pendingRetrain = fired
	return nil
}

// EnableDurableGrants roots the fleet registry's grant persistence at dir:
// from now on every Register, Deregister and Rebalance atomically rewrites
// the grant table. Any table a previous process saved is read NOW — before
// this process's registrations start overwriting it — and held for
// RestoreGrants to apply once the tenants are re-registered; a table that
// fails its checksum surfaces here as ErrCorruptStore. fs nil uses the
// default filesystem; the chaos harness passes an injected one.
func (f *FleetRegistry) EnableDurableGrants(dir string, fs *atomicio.FS) error {
	st, err := durable.OpenFleet(dir, fs)
	if err != nil {
		return err
	}
	if m := f.reg.Config().Metrics; m != nil {
		st.Instrument(m)
	}
	saved, err := st.LoadGrants()
	if err != nil {
		return err
	}
	f.store = st
	f.saved = saved
	return nil
}

// saveGrants persists the registry's current grant table. Fail-open like the
// deployment checkpoints: an error is counted by the store's telemetry and
// the fleet keeps serving from memory.
func (f *FleetRegistry) saveGrants() {
	if f.store == nil {
		return
	}
	f.persistMu.Lock()
	defer f.persistMu.Unlock()
	budget := f.reg.Budget()
	table := durable.GrantTable{Budget: int64(budget.Budget)}
	for _, name := range f.reg.Tenants() {
		st, ok := f.reg.Stats(name)
		if !ok {
			continue
		}
		table.Grants = append(table.Grants, durable.GrantEntry{Name: name, Granted: int64(st.Grant)})
	}
	// Injected crashes panic through; plain write errors are already counted.
	_ = f.store.SaveGrants(table)
}

// RestoreGrants applies the grant table EnableDurableGrants found on disk to
// the registry's current tenants (register them first) and reports whether
// one existed. Grants for tenants that no longer exist are dropped; tenants
// registered since the save keep their live grants; the total is clamped to
// the budget (see fleet.ApplyGrants). The applied state is re-saved so the
// table and the registry agree again.
func (f *FleetRegistry) RestoreGrants() (bool, error) {
	if f.store == nil {
		return false, fmt.Errorf("loam: RestoreGrants before EnableDurableGrants")
	}
	if f.saved == nil {
		return false, nil
	}
	grants := make(map[string]int, len(f.saved.Grants))
	for _, g := range f.saved.Grants {
		grants[g.Name] = int(g.Granted)
	}
	f.saved = nil
	f.reg.ApplyGrants(grants)
	f.saveGrants()
	return true, nil
}
