package loam

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"loam/internal/durable"
)

// durableHarness is lifecycleHarness with a durable store rooted in a test
// dir, returning the option set restore calls must repeat.
func durableHarness(t *testing.T, seed uint64, lcfg LifecycleConfig) (*ProjectSim, *Deployment, string, []DeployOption) {
	t.Helper()
	dir := t.TempDir()
	gcfg := DefaultGuardConfig()
	gcfg.DivergenceBand = 0.01
	gcfg.DivergenceWindow = 4
	gcfg.QuarantineWindows = 1
	opts := []DeployOption{
		WithGuardConfig(gcfg),
		WithLifecycle(lcfg),
		WithDurableStore(dir),
	}

	sim := NewSimulation(seed, DefaultSimulationConfig())
	cfg := DefaultProjectConfig("dur")
	cfg.Archetype.NumTables = 12
	cfg.Workload.NumTemplates = 8
	cfg.Workload.QueriesPerDayMean = 8
	ps := sim.AddProject(cfg)
	ps.RunDays(0, 8)

	dcfg := DefaultDeployConfig()
	dcfg.TrainDays = 6
	dcfg.TestDays = 2
	dcfg.Predictor.Epochs = 3
	dcfg.DomainPlans = 16
	dep, err := ps.Deploy(dcfg, opts...)
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	return ps, dep, dir, opts
}

// serveUntilPromoted serves query-by-query until the lifecycle reaches
// version 2, failing if the serve budget runs out.
func serveUntilPromoted(t *testing.T, ps *ProjectSim, dep *Deployment) {
	t.Helper()
	for day := 8; day < 16; day++ {
		for _, q := range ps.Gen.Day(day) {
			c, err := dep.Optimize(q)
			if err != nil {
				t.Fatalf("optimize day %d: %v", day, err)
			}
			dep.ExecuteChoice(c)
			if dep.Lifecycle().Version() != 1 {
				return
			}
		}
	}
	t.Fatal("no promotion within the serve budget")
}

func TestDeployCommitsInitialCheckpoint(t *testing.T) {
	_, dep, dir, _ := durableHarness(t, 31, quickLifecycleConfig())
	man := dep.dur.store.Manifest()
	if man == nil || man.Version != 1 || man.Event != durable.EventDeploy || man.Next != 2 {
		t.Fatalf("initial manifest: %+v", man)
	}
	if rep := durable.Fsck(dir); !rep.OK() {
		t.Fatalf("fsck after deploy: %+v", rep.Problems)
	}
	if n := dep.Telemetry().Counter("durable.checkpoints").Value(); n != 1 {
		t.Fatalf("durable.checkpoints = %d", n)
	}
}

func TestRestoreServesLastDurableVersion(t *testing.T) {
	ps, dep, dir, opts := durableHarness(t, 31, quickLifecycleConfig())
	serveUntilPromoted(t, ps, dep)
	man := dep.dur.store.Manifest()
	if man.Version != 2 || man.Event != durable.EventPromote {
		t.Fatalf("manifest after promote: %+v", man)
	}
	var before bytes.Buffer
	if err := dep.SaveModel(&before); err != nil {
		t.Fatalf("save: %v", err)
	}

	// "Restart": rebuild the deployment from disk alone.
	dep2, err := ps.RestoreDeployment(dir, 6, 2, opts...)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	lc := dep2.Lifecycle()
	if v := lc.Version(); v != 2 {
		t.Fatalf("restored version = %d, want 2", v)
	}
	if lc.next != man.Next {
		t.Fatalf("next counter = %d, want %d", lc.next, man.Next)
	}
	if !lc.InProbation() {
		t.Fatal("restore inside probation must re-arm rollback insurance")
	}
	if lc.probationLeft != man.Probation {
		t.Fatalf("probation budget = %d, want %d", lc.probationLeft, man.Probation)
	}
	// The restored serving model is byte-identical to the one that crashed.
	var after bytes.Buffer
	if err := dep2.SaveModel(&after); err != nil {
		t.Fatalf("save restored: %v", err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatal("restored model differs from the serving model at checkpoint")
	}
	// And it serves.
	for day := 20; ; day++ {
		qs := ps.Gen.Day(day)
		if len(qs) == 0 {
			continue
		}
		if _, err := dep2.Optimize(qs[0]); err != nil {
			t.Fatalf("restored deployment cannot serve: %v", err)
		}
		break
	}
	if n := dep2.Telemetry().Counter("durable.restores").Value(); n != 1 {
		t.Fatalf("durable.restores = %d", n)
	}
}

// TestRestoreMidProbationRollsBack is the restart-safety contract: a restart
// between a promotion and its indictment must not launder the probation away
// — the restored deployment still rolls back to the pre-promote model when
// the sentinel trips.
func TestRestoreMidProbationRollsBack(t *testing.T) {
	ps, dep, dir, opts := durableHarness(t, 31, quickLifecycleConfig())
	serveUntilPromoted(t, ps, dep)

	dep2, err := ps.RestoreDeployment(dir, 6, 2, opts...)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	lc := dep2.Lifecycle()
	if !lc.InProbation() {
		t.Fatal("not in probation after restore")
	}
	promoted := dep2.Predictor()
	for day := 16; day < 28; day++ {
		for _, q := range ps.Gen.Day(day) {
			c, err := dep2.Optimize(q)
			if err != nil {
				t.Fatalf("optimize: %v", err)
			}
			dep2.ExecuteChoice(c)
		}
		if dep2.Telemetry().Counter("lifecycle.rollback").Value() > 0 {
			break
		}
	}
	if n := dep2.Telemetry().Counter("lifecycle.rollback").Value(); n == 0 {
		t.Fatal("no rollback after mid-probation restore")
	}
	if v := lc.Version(); v != 1 {
		t.Fatalf("rollback restored version %d, want 1", v)
	}
	if dep2.Predictor() == promoted {
		t.Fatal("rollback did not swap the promoted model out")
	}
	// The rollback itself checkpointed: a second restart lands on version 1.
	man := dep2.dur.store.Manifest()
	if man.Version != 1 || man.Event != durable.EventRollback {
		t.Fatalf("manifest after rollback: %+v", man)
	}
}

// TestProbationClearDropsRollbackSnapshot drives a promotion through a quiet
// probation (sentinel band widened after the promote) and verifies the
// clearance checkpoint drops the predecessor snapshot from disk.
func TestProbationClearDropsRollbackSnapshot(t *testing.T) {
	lcfg := quickLifecycleConfig()
	lcfg.Probation = 3
	ps, dep, dir, _ := durableHarness(t, 31, lcfg)
	serveUntilPromoted(t, ps, dep)
	if !dep.Lifecycle().InProbation() {
		t.Fatal("not in probation after promote")
	}
	// Run the probation clock down with quiet reaction points, draining any
	// pending sentinel trip first so the clearance path (not rollback) runs.
	for i := 0; i < lcfg.Probation+1 && dep.Lifecycle().InProbation(); i++ {
		dep.lc.sentinel.Store(false)
		dep.lc.mu.Lock()
		dep.lc.reactLocked(false)
		dep.lc.mu.Unlock()
	}
	if dep.Lifecycle().InProbation() {
		t.Fatal("probation never cleared")
	}
	man := dep.dur.store.Manifest()
	if man.Event != durable.EventProbationClear || man.PrevSnapshot != "" {
		t.Fatalf("manifest after clearance: %+v", man)
	}
	// The predecessor snapshot is gone from models/.
	ents, err := os.ReadDir(filepath.Join(dir, "models"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("models dir after clearance: %v", names)
	}
}

func TestRestoreReplaysJournalIntoDetector(t *testing.T) {
	// Park the sentinel AND keep drift unreachable: no checkpoint events, so
	// the journal accumulates across the whole serve stream.
	lcfg := quickLifecycleConfig()
	sim := NewSimulation(33, DefaultSimulationConfig())
	cfg := DefaultProjectConfig("jr")
	cfg.Archetype.NumTables = 10
	cfg.Workload.NumTemplates = 6
	cfg.Workload.QueriesPerDayMean = 6
	ps := sim.AddProject(cfg)
	ps.RunDays(0, 8)
	dir := t.TempDir()
	dcfg := DefaultDeployConfig()
	dcfg.TrainDays = 6
	dcfg.TestDays = 2
	dcfg.Predictor.Epochs = 2
	dcfg.DomainPlans = 8
	opts := []DeployOption{WithLifecycle(lcfg), WithDurableStore(dir)}
	dep, err := ps.Deploy(dcfg, opts...)
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	served := 0
	for _, q := range ps.Gen.Day(8) {
		c, err := dep.Optimize(q)
		if err != nil {
			t.Fatalf("optimize: %v", err)
		}
		dep.ExecuteChoice(c)
		served++
	}
	appended := dep.Telemetry().Counter("durable.journal.appends").Value()
	if appended != int64(served) {
		t.Fatalf("journal appends = %d, served %d", appended, served)
	}

	dep2, err := ps.RestoreDeployment(dir, 6, 2, opts...)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	replayed := dep2.Telemetry().Counter("durable.journal.replayed").Value()
	if replayed != int64(served) {
		t.Fatalf("journal replayed = %d, want %d", replayed, served)
	}
}

func TestRestoreWithoutCheckpointFails(t *testing.T) {
	sim := NewSimulation(31, DefaultSimulationConfig())
	ps := sim.AddProject(DefaultProjectConfig("none"))
	if _, err := ps.RestoreDeployment(t.TempDir(), 6, 2); err == nil {
		t.Fatal("restore from an empty dir must fail")
	}
}

func TestRestoreRejectsCorruptSnapshot(t *testing.T) {
	ps, dep, dir, opts := durableHarness(t, 31, quickLifecycleConfig())
	man := dep.dur.store.Manifest()
	path := filepath.Join(dir, "models", man.Snapshot)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x04
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ps.RestoreDeployment(dir, 6, 2, opts...); !errors.Is(err, durable.ErrCorruptStore) {
		t.Fatalf("want ErrCorruptStore, got %v", err)
	}
}

func TestFleetGrantsSurviveRestart(t *testing.T) {
	sim := fleetSim(t)
	dir := t.TempDir()
	fcfg := DefaultFleetConfig()
	fcfg.CacheBudget = 120
	fcfg.InitialGrant = 40

	deploy := func(name string) *Deployment {
		dep, err := sim.Project(name).Deploy(fleetDeployConfig())
		if err != nil {
			t.Fatalf("deploy %s: %v", name, err)
		}
		return dep
	}
	f := sim.NewFleet(fcfg)
	if err := f.EnableDurableGrants(dir, nil); err != nil {
		t.Fatalf("enable grants: %v", err)
	}
	for _, name := range []string{"fa", "fb"} {
		if err := f.Register(name, deploy(name)); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}
	// Skew traffic so Rebalance produces unequal grants.
	ctx := context.Background()
	for i, q := range sim.Project("fa").Gen.Day(5) {
		if _, err := f.Route(ctx, "fa", q); err != nil {
			t.Fatalf("route: %v", err)
		}
		if i >= 7 {
			break
		}
	}
	for _, q := range sim.Project("fb").Gen.Day(5) {
		if _, err := f.Route(ctx, "fb", q); err != nil {
			t.Fatalf("route: %v", err)
		}
		break
	}
	f.Rebalance()
	want := map[string]int{}
	for _, name := range f.Tenants() {
		st, _ := f.Stats(name)
		want[name] = st.Grant
	}
	if want["fa"] == want["fb"] {
		t.Fatalf("traffic skew produced equal grants: %v", want)
	}

	// "Restart" the fleet: fresh registry, re-register, restore.
	f2 := sim.NewFleet(fcfg)
	if err := f2.EnableDurableGrants(dir, nil); err != nil {
		t.Fatalf("re-enable grants: %v", err)
	}
	for _, name := range []string{"fa", "fb"} {
		if err := f2.Register(name, deploy(name)); err != nil {
			t.Fatalf("re-register %s: %v", name, err)
		}
	}
	restored, err := f2.RestoreGrants()
	if err != nil || !restored {
		t.Fatalf("restore grants: restored=%v err=%v", restored, err)
	}
	for name, grant := range want {
		st, ok := f2.Stats(name)
		if !ok || st.Grant != grant {
			t.Fatalf("%s grant = %d, want %d", name, st.Grant, grant)
		}
	}
	b := f2.Budget()
	if b.Granted > b.Budget || b.Entries > b.Granted {
		t.Fatalf("budget invariant broken after restore: %+v", b)
	}

	// A third process with no saved table reports no restore.
	f3 := sim.NewFleet(fcfg)
	if err := f3.EnableDurableGrants(t.TempDir(), nil); err != nil {
		t.Fatal(err)
	}
	if restored, err := f3.RestoreGrants(); restored || err != nil {
		t.Fatalf("fresh dir: restored=%v err=%v", restored, err)
	}
}
