package loam

import (
	"testing"
)

func deployTiny(t *testing.T, seed uint64) *Deployment {
	t.Helper()
	sim := NewSimulation(seed, DefaultSimulationConfig())
	cfg := DefaultProjectConfig("val")
	cfg.Archetype.NumTables = 12
	cfg.Workload.NumTemplates = 6
	cfg.Workload.QueriesPerDayMean = 5
	ps := sim.AddProject(cfg)
	ps.RunDays(0, 8)
	dcfg := DefaultDeployConfig()
	dcfg.TrainDays = 6
	dcfg.TestDays = 2
	dcfg.Predictor.Epochs = 3
	dcfg.DomainPlans = 8
	dep, err := ps.Deploy(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

func TestValidateProducesGateDecision(t *testing.T) {
	dep := deployTiny(t, 41)
	vcfg := DefaultValidationConfig()
	vcfg.SampleQueries = 6
	res, err := dep.Validate(vcfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 || res.Queries > 6 {
		t.Fatalf("validated %d queries", res.Queries)
	}
	if res.NativeCost <= 0 || res.SelectedCost <= 0 {
		t.Fatalf("costs %g / %g", res.NativeCost, res.SelectedCost)
	}
	// The gate decision must be consistent with the threshold.
	wantAccept := res.SelectedCost <= res.NativeCost*1.05
	if res.Accepted != wantAccept {
		t.Fatalf("accepted=%v inconsistent with costs %g vs %g", res.Accepted, res.SelectedCost, res.NativeCost)
	}
	// Ranker samples carry bounded features.
	if len(res.RankerSamples) == 0 {
		t.Fatal("no ranker samples derived")
	}
	for _, s := range res.RankerSamples {
		if s.Improvement < 0 {
			t.Fatalf("negative improvement %g", s.Improvement)
		}
		for _, f := range s.Features {
			if f < 0 || f > 1 {
				t.Fatalf("feature %g out of range", f)
			}
		}
	}
	if res.ImprovementSpace < 0 {
		t.Fatal("negative improvement space")
	}
}

func TestValidateRejectsEmptyTestSet(t *testing.T) {
	dep := deployTiny(t, 42)
	dep.TestSet = nil
	if _, err := dep.Validate(DefaultValidationConfig()); err == nil {
		t.Fatal("expected error for empty test set")
	}
}

func TestValidateDoesNotLogToHistory(t *testing.T) {
	dep := deployTiny(t, 43)
	before := dep.ProjectSim.Repo.Len()
	vcfg := DefaultValidationConfig()
	vcfg.SampleQueries = 3
	if _, err := dep.Validate(vcfg); err != nil {
		t.Fatal(err)
	}
	if dep.ProjectSim.Repo.Len() != before {
		t.Fatal("validation polluted the project history")
	}
}
