package loam

import (
	"errors"
	"strings"
	"testing"

	"loam/internal/predictor"
	"loam/internal/selector"
)

func fleetSim(t *testing.T) *Simulation {
	t.Helper()
	sim := NewSimulation(51, DefaultSimulationConfig())
	for i, name := range []string{"fa", "fb", "fc"} {
		cfg := DefaultProjectConfig(name)
		cfg.Archetype.NumTables = 8 + i
		cfg.Workload.NumTemplates = 4
		cfg.Workload.QueriesPerDayMean = 4
		ps := sim.AddProject(cfg)
		ps.RunDays(0, 5)
	}
	// One project with no history at all.
	cfg := DefaultProjectConfig("empty")
	sim.AddProject(cfg)
	return sim
}

func fleetDeployConfig() DeployConfig {
	dcfg := DefaultDeployConfig()
	dcfg.TrainDays = 4
	dcfg.TestDays = 1
	dcfg.Predictor.Epochs = 2
	dcfg.DomainPlans = 4
	return dcfg
}

func TestDeployAllParallelMatchesSequential(t *testing.T) {
	for _, parallelism := range []int{1, 3} {
		sim := fleetSim(t)
		results := sim.DeployAll(fleetDeployConfig(), parallelism)
		if len(results) != 4 {
			t.Fatalf("results %d", len(results))
		}
		for i, r := range results {
			if r.Project != sim.Projects[i].Config.Name {
				t.Fatal("result order broken")
			}
			if r.Project == "empty" {
				if r.Err == nil {
					t.Fatal("empty project should fail")
				}
				continue
			}
			if r.Err != nil {
				t.Fatalf("%s: %v", r.Project, r.Err)
			}
			if r.Deployment == nil || r.Deployment.TrainSize == 0 {
				t.Fatalf("%s: empty deployment", r.Project)
			}
		}
	}
}

// TestDeployAllErrorShape pins the failure message format: ProjectSim.Deploy
// already prefixes "deploy <name>:", and DeployAll must not wrap it again.
func TestDeployAllErrorShape(t *testing.T) {
	sim := fleetSim(t)
	results := sim.DeployAll(fleetDeployConfig(), 2)
	var failed *FleetResult
	for i := range results {
		if results[i].Project == "empty" {
			failed = &results[i]
		}
	}
	if failed == nil || failed.Err == nil {
		t.Fatal("empty project should carry an error")
	}
	if !errors.Is(failed.Err, predictor.ErrNoTrainingData) {
		t.Fatalf("error chain lost: %v", failed.Err)
	}
	msg := failed.Err.Error()
	if !strings.HasPrefix(msg, "deploy empty:") {
		t.Fatalf("missing project prefix: %q", msg)
	}
	if strings.Count(msg, "deploy empty:") != 1 {
		t.Fatalf("double-wrapped project prefix: %q", msg)
	}
}

func TestSelectAndDeployTopN(t *testing.T) {
	sim := fleetSim(t)
	pass := func(ps *ProjectSim) bool { return ps.Repo.Len() > 0 }
	scores := map[string]float64{"fa": 0.1, "fb": 0.9, "fc": 0.5}
	results := sim.SelectAndDeploy(fleetDeployConfig(), pass, scores, 2, 2)
	if len(results) != 2 {
		t.Fatalf("deployed %d", len(results))
	}
	if results[0].Project != "fb" || results[1].Project != "fc" {
		t.Fatalf("wrong top-2: %v %v", results[0].Project, results[1].Project)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Project, r.Err)
		}
	}
}

// TestSelectAndDeployAbsentRanksLast pins the documented ordering for
// projects missing from the scores map: they rank below every scored
// survivor — including negatively-scored ones, which the scores-map zero
// value used to let them outrank.
func TestSelectAndDeployAbsentRanksLast(t *testing.T) {
	sim := fleetSim(t)
	pass := func(ps *ProjectSim) bool { return ps.Repo.Len() > 0 }
	// fb is unscored; fa and fc carry negative improvement estimates. The
	// top-2 must be the scored projects (best first), not the unscored one
	// tying at 0.0.
	scores := map[string]float64{"fa": -0.2, "fc": -0.7}
	results := sim.SelectAndDeploy(fleetDeployConfig(), pass, scores, 2, 1)
	if len(results) != 2 {
		t.Fatalf("deployed %d", len(results))
	}
	if results[0].Project != "fa" || results[1].Project != "fc" {
		t.Fatalf("negatively-scored survivors outranked by an unscored project: %v, %v",
			results[0].Project, results[1].Project)
	}
	// With room for everyone, the unscored project still comes last.
	results = sim.SelectAndDeploy(fleetDeployConfig(), pass, scores, 3, 1)
	if len(results) != 3 || results[2].Project != "fb" {
		t.Fatalf("unscored project should rank last, got %+v", resultNames(results))
	}
}

func resultNames(rs []FleetResult) []string {
	names := make([]string, len(rs))
	for i, r := range rs {
		names[i] = r.Project
	}
	return names
}

func TestSelectAndDeployFilterExcludes(t *testing.T) {
	sim := fleetSim(t)
	// A real App.-D.1 filter over the histories.
	fcfg := selector.ScaledFilterConfig(1)
	pass := func(ps *ProjectSim) bool {
		ok, _ := fcfg.Pass(selector.ComputeStats(ps.Repo.All(), ps.Project, 30))
		return ok
	}
	results := sim.SelectAndDeploy(fleetDeployConfig(), pass, nil, 0, 1)
	for _, r := range results {
		if r.Project == "empty" {
			t.Fatal("filter failed to exclude the empty project")
		}
	}
}
