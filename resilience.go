package loam

import (
	"loam/internal/faultinject"
	"loam/internal/guard"
	"loam/internal/predictor"
)

// This file is the root package's resilience surface: the failure sentinels
// callers can errors.Is against, the guarded-serving types (origin, breaker
// state, guard configuration) and the deterministic fault injector. The
// mechanics live in internal/guard and internal/faultinject; everything a
// caller needs is re-exported here so application code never imports
// internal packages.

// Predictor sentinels. These are the permanent, per-query/per-model failure
// modes of the learned path, re-exported so callers don't need to know which
// internal package produced them.
var (
	// ErrNoTrainingData reports a Deploy with an empty training split.
	ErrNoTrainingData = predictor.ErrNoTrainingData
	// ErrNoCandidates reports an optimize call where the plan explorer
	// produced no candidate plans.
	ErrNoCandidates = predictor.ErrNoCandidates
	// ErrNoFiniteEstimate reports an optimize call where no candidate plan
	// received a finite cost estimate.
	ErrNoFiniteEstimate = predictor.ErrNoFiniteEstimate
	// ErrCorruptSnapshot reports a DeployFromModel whose snapshot payload
	// disagrees with the architecture its own config describes (truncated
	// or reshaped tensors, kind mismatch, bad dimensions). Distinguishable
	// from I/O failures with errors.Is; a load that returns it has mutated
	// nothing.
	ErrCorruptSnapshot = predictor.ErrCorruptSnapshot
)

// Guard sentinels: the failure taxonomy (transient vs permanent) plus the
// specific degraded-mode causes. A Choice served from a fallback rung
// carries one of these in FallbackCause; errors.Is matches both the class
// and the cause (see internal/guard).
var (
	// ErrTransientFailure classifies learned-path failures likely to clear
	// on their own (deadline hits, injected faults, breaker rejections).
	ErrTransientFailure = guard.ErrTransient
	// ErrPermanentFailure classifies failures deterministic for the query
	// or model (no candidates, no finite estimate, quarantine).
	ErrPermanentFailure = guard.ErrPermanent
	// ErrLearnedDeadline reports the learned path exceeding its per-query
	// deadline (GuardConfig.Deadline).
	ErrLearnedDeadline = guard.ErrDeadline
	// ErrBreakerOpen reports the learned path skipped while the circuit
	// breaker cools down.
	ErrBreakerOpen = guard.ErrBreakerOpen
	// ErrModelQuarantined reports the model sidelined by the regression
	// sentinel. Quarantine lifts when an operator calls
	// Deployment.Guard().Reset(), or when the lifecycle (WithLifecycle)
	// promotes a retrained model or rolls back during probation — the swap
	// retires the indicted scorer, so the sentinel starts fresh.
	ErrModelQuarantined = guard.ErrQuarantined
	// ErrNoServablePlan reports total exhaustion of the fallback ladder —
	// learned, native re-plan and default candidate all unavailable. It is
	// the only guard condition surfaced as an Optimize error rather than a
	// degraded Choice.
	ErrNoServablePlan = guard.ErrNoServablePlan
	// ErrInjectedFault marks failures forced by a fault injector; it wraps
	// the concrete fault so tests can tell injected outages from organic
	// ones.
	ErrInjectedFault = faultinject.ErrInjected
)

// Origin reports which rung of the serving ladder produced a Choice.
type Origin = guard.Origin

const (
	// OriginLearned: the learned predictor scored and chose the plan.
	OriginLearned = guard.OriginLearned
	// OriginNativeFallback: the learned path failed; the native optimizer
	// re-planned the query with default flags.
	OriginNativeFallback = guard.OriginNativeFallback
	// OriginDefaultFallback: the pre-generated default candidate was served
	// (native re-plan unavailable or also failing).
	OriginDefaultFallback = guard.OriginDefaultFallback
)

// BreakerState is the serving guard's circuit-breaker position.
type BreakerState = guard.BreakerState

const (
	// BreakerClosed: healthy, the learned path serves.
	BreakerClosed = guard.BreakerClosed
	// BreakerOpen: the learned path is rejected while the cooldown runs.
	BreakerOpen = guard.BreakerOpen
	// BreakerHalfOpen: probe calls test whether the learned path recovered.
	BreakerHalfOpen = guard.BreakerHalfOpen
)

// GuardConfig tunes the serving guard; see WithGuardConfig and the field
// docs in internal/guard.
type GuardConfig = guard.Config

// DefaultGuardConfig returns the guard configuration deployments use when
// WithGuardConfig is not given.
func DefaultGuardConfig() GuardConfig { return guard.DefaultConfig() }

// Guard is a deployment's serving guard — exposed for breaker-state
// inspection (State, Quarantined) and operator intervention (Reset).
type Guard = guard.Guard

// FaultInjector deterministically forces serving-path faults; arm one with
// WithFaultInjector. Decisions are pure functions of (seed, fault kind,
// query ID): order- and parallelism-independent, byte-identical across
// same-seed runs.
type FaultInjector = faultinject.Injector

// FaultInjectorConfig sets per-fault-kind injection rates in [0, 1].
type FaultInjectorConfig = faultinject.Config

// NewFaultInjector builds a deterministic fault injector. The injector
// starts enabled; SetEnabled(false) pauses injection (e.g. to model an
// outage window that starts mid-run) without disturbing its decisions for
// other queries.
func NewFaultInjector(seed uint64, cfg FaultInjectorConfig) *FaultInjector {
	return faultinject.New(seed, cfg)
}
