package loam

import (
	"math"

	"loam/internal/telemetry"
)

// servingTelemetry holds the deployment's resolved serving-path instruments.
// Every field is a nil-safe no-op when no registry is wired, and every value
// that reaches a snapshot is an order-independent aggregate, so parallel
// OptimizeBatch runs snapshot identically to sequential ones (the telemetry
// contract, DESIGN.md).
type servingTelemetry struct {
	optimizeTotal   *telemetry.Counter
	optimizeErrors  *telemetry.Counter
	optimizeCancels *telemetry.Counter
	optimizeLatency *telemetry.Timer
	candidates      *telemetry.Histogram
	estimateSpread  *telemetry.Histogram
	nanEstimates    *telemetry.Counter
	batchTotal      *telemetry.Counter
	batchQueries    *telemetry.Counter
	batchSize       *telemetry.Histogram
}

// newServingTelemetry resolves the serving instruments from a registry.
func newServingTelemetry(reg *telemetry.Registry) servingTelemetry {
	return servingTelemetry{
		optimizeTotal:   reg.Counter("serve.optimize.total"),
		optimizeErrors:  reg.Counter("serve.optimize.errors"),
		optimizeCancels: reg.Counter("serve.optimize.canceled"),
		optimizeLatency: reg.Timer("serve.optimize.latency"),
		candidates:      reg.Histogram("serve.candidates", telemetry.LinearBuckets(1, 1, 8)),
		estimateSpread:  reg.Histogram("serve.estimate.rel_spread", []float64{0.01, 0.05, 0.1, 0.25, 0.5, 1, 2, 5}),
		nanEstimates:    reg.Counter("serve.estimates.nan"),
		batchTotal:      reg.Counter("serve.batch.total"),
		batchQueries:    reg.Counter("serve.batch.queries"),
		batchSize:       reg.Histogram("serve.batch.size", telemetry.ExpBuckets(1, 4, 7)),
	}
}

// lifecycleTelemetry holds the model-lifecycle instruments (lifecycle.* and
// model.version). They are registered only when WithLifecycle attaches a
// manager, so lifecycle-free deployments snapshot exactly as before. Every
// value is either a monotonic count or a gauge written under the lifecycle
// mutex, so same-seed single-driver runs snapshot byte-identically.
type lifecycleTelemetry struct {
	modelVersion      *telemetry.Gauge
	feedbackHarvested *telemetry.Counter
	feedbackSize      *telemetry.Gauge
	driftSignals      *telemetry.Counter
	retrainRuns       *telemetry.Counter
	retrainFailed     *telemetry.Counter
	retrainRejected   *telemetry.Counter
	promotes          *telemetry.Counter
	rollbacks         *telemetry.Counter
	shadowIncumbent   *telemetry.Gauge
	shadowCandidate   *telemetry.Gauge
}

// newLifecycleTelemetry resolves the lifecycle instruments from a registry.
func newLifecycleTelemetry(reg *telemetry.Registry) lifecycleTelemetry {
	return lifecycleTelemetry{
		modelVersion:      reg.Gauge("model.version"),
		feedbackHarvested: reg.Counter("lifecycle.feedback.harvested"),
		feedbackSize:      reg.Gauge("lifecycle.feedback.size"),
		driftSignals:      reg.Counter("lifecycle.drift.signals"),
		retrainRuns:       reg.Counter("lifecycle.retrain.runs"),
		retrainFailed:     reg.Counter("lifecycle.retrain.failed"),
		retrainRejected:   reg.Counter("lifecycle.retrain.rejected"),
		promotes:          reg.Counter("lifecycle.promote"),
		rollbacks:         reg.Counter("lifecycle.rollback"),
		shadowIncumbent:   reg.Gauge("lifecycle.shadow.incumbent_logerr"),
		shadowCandidate:   reg.Gauge("lifecycle.shadow.candidate_logerr"),
	}
}

// setShadowErrs records the latest shadow-scoring comparison; NaN scores
// (nothing scorable in the window) leave the gauges untouched rather than
// poisoning the snapshot.
func (t lifecycleTelemetry) setShadowErrs(incumbent, candidate float64) {
	if !math.IsNaN(incumbent) {
		t.shadowIncumbent.Set(incumbent)
	}
	if !math.IsNaN(candidate) {
		t.shadowCandidate.Set(candidate)
	}
}

// observeEstimates records estimate-quality signals for one choice: how many
// candidate estimates were NaN, and the relative spread (max−min)/min of the
// finite ones — a wide spread means steering had real headroom to exploit,
// a zero spread means the candidates were indistinguishable to the model.
func (t servingTelemetry) observeEstimates(estimates []float64) {
	lo, hi := math.NaN(), math.NaN()
	nans := int64(0)
	for _, v := range estimates {
		if math.IsNaN(v) {
			nans++
			continue
		}
		if math.IsNaN(lo) || v < lo {
			lo = v
		}
		if math.IsNaN(hi) || v > hi {
			hi = v
		}
	}
	t.nanEstimates.Add(nans)
	if !math.IsNaN(lo) && lo > 0 {
		t.estimateSpread.Observe((hi - lo) / lo)
	}
}
