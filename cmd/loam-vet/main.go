// Command loam-vet runs the repo's custom static-analysis suite
// (internal/analysis): determinism, lockdiscipline, nansafety, errwrap,
// guarddiscipline, inferencepurity, and the typed contracts allocdiscipline,
// lockorder and ctxflow.
// It loads every package under the module root with stdlib go/parser and
// type-checks it with go/types — no build system, no dependencies — and
// exits 1 on any finding not covered by the commented allowlist, or on any
// allowlist entry that no longer matches a finding (stale suppressions are
// bugs waiting to hide the next real finding).
//
// Usage:
//
//	loam-vet [-hints] [-json] [-rules determinism,errwrap]
//	         [-roots pkg.Func,...] [-prune-allowlist] [./... | dir]
//
// With a directory argument the module root is resolved by walking up to
// go.mod from there; the default "./..." resolves from the working
// directory. -hints appends a suggested rewrite to each finding (the
// `make lint-fix-hints` mode). -json emits the machine-readable report
// (active findings, allowlisted findings with their Reasons, stale allowlist
// entries) in a stable order for CI annotation. -roots overrides the
// allocdiscipline serving-root set. -prune-allowlist prints removal hints
// for stale entries instead of the findings listing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"loam/internal/analysis"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

// jsonFinding is one row of the -json report. The field set and ordering are
// pinned by TestJSONGolden — CI consumes this format.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	// Reason is set only on allowlisted findings.
	Reason string `json:"reason,omitempty"`
}

// jsonReport is the -json document: findings first (the ones that fail the
// run), then suppressions with their Reasons, then stale allowlist entries.
type jsonReport struct {
	Findings   []jsonFinding `json:"findings"`
	Suppressed []jsonFinding `json:"suppressed"`
	Stale      []jsonStale   `json:"stale"`
}

type jsonStale struct {
	Rule       string `json:"rule"`
	PathPrefix string `json:"path_prefix"`
	Contains   string `json:"contains,omitempty"`
	Reason     string `json:"reason"`
}

func run(out, errw io.Writer, args []string) int {
	fs := flag.NewFlagSet("loam-vet", flag.ContinueOnError)
	fs.SetOutput(errw)
	hints := fs.Bool("hints", false, "print a suggested rewrite under each finding")
	rules := fs.String("rules", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit the stable-ordered JSON report (findings, suppressions, stale entries)")
	roots := fs.String("roots", "", "comma-separated pkgsuffix.Func overrides for the allocdiscipline serving roots")
	prune := fs.Bool("prune-allowlist", false, "print removal hints for allowlist entries that match nothing")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.Analyzers()
	if *roots != "" {
		var specs []string
		for _, r := range strings.Split(*roots, ",") {
			r = strings.TrimSpace(r)
			if r == "" {
				continue
			}
			if _, ok := analysis.ParseRootSpec(r); !ok {
				fmt.Fprintf(errw, "loam-vet: -roots entry %q is not pkgsuffix.Func\n", r)
				return 2
			}
			specs = append(specs, r)
		}
		for i, a := range analyzers {
			if a.Name == "allocdiscipline" {
				analyzers[i] = analysis.AllocDisciplineWithRoots(specs)
			}
		}
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-15s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *rules != "" {
		want := map[string]bool{}
		for _, r := range strings.Split(*rules, ",") {
			want[strings.TrimSpace(r)] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
			}
		}
		if len(sel) == 0 {
			fmt.Fprintf(errw, "loam-vet: no analyzer matches -rules %q\n", *rules)
			return 2
		}
		analyzers = sel
	}

	target := "./..."
	if fs.NArg() > 0 {
		target = fs.Arg(0)
	}
	start := target
	if start == "./..." || start == "." {
		wd, err := os.Getwd()
		if err != nil {
			fmt.Fprintf(errw, "loam-vet: %v\n", err)
			return 2
		}
		start = wd
	}
	root, err := findModuleRoot(start)
	if err != nil {
		fmt.Fprintf(errw, "loam-vet: %v\n", err)
		return 2
	}

	prog, err := analysis.LoadProgram(root)
	if err != nil {
		fmt.Fprintf(errw, "loam-vet: %v\n", err)
		return 2
	}
	rep := analysis.Run(prog, analyzers, analysis.DefaultAllowlist())
	// Stale tracking is only meaningful against the full suite: a -rules
	// subset never fires the other analyzers' entries.
	if *rules != "" {
		rep.Stale = nil
	}

	if *jsonOut {
		if err := writeJSON(out, rep); err != nil {
			fmt.Fprintf(errw, "loam-vet: %v\n", err)
			return 2
		}
	} else if *prune {
		for _, e := range rep.Stale {
			fmt.Fprintf(out, "stale allowlist entry: rule=%s path=%s contains=%q — remove it (reason was: %s)\n",
				e.Rule, e.PathPrefix, e.Contains, e.Reason)
		}
		if len(rep.Stale) == 0 {
			fmt.Fprintln(out, "allowlist is tight: every entry matches a live finding")
		}
	} else {
		for _, f := range rep.Findings {
			fmt.Fprintln(out, f.String())
			if *hints && f.Suggestion != "" {
				fmt.Fprintf(out, "\thint: %s\n", f.Suggestion)
			}
		}
	}

	exit := 0
	if len(rep.Findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(out, "loam-vet: %d finding(s)\n", len(rep.Findings))
		}
		exit = 1
	}
	if len(rep.Stale) > 0 {
		if !*jsonOut && !*prune {
			fmt.Fprintf(out, "loam-vet: %d stale allowlist entr%s (run with -prune-allowlist for removal hints)\n",
				len(rep.Stale), plural(len(rep.Stale), "y", "ies"))
		}
		exit = 1
	}
	return exit
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// writeJSON renders the report. Ordering is stable: analysis.Run sorts
// findings and suppressions by (file, line, rule), stale entries keep
// allowlist declaration order, and encoding/json preserves struct order.
func writeJSON(out io.Writer, rep analysis.Report) error {
	doc := jsonReport{
		Findings:   []jsonFinding{},
		Suppressed: []jsonFinding{},
		Stale:      []jsonStale{},
	}
	for _, f := range rep.Findings {
		doc.Findings = append(doc.Findings, jsonFinding{
			File: f.Pos.Filename, Line: f.Pos.Line, Analyzer: f.Rule, Message: f.Message,
		})
	}
	for _, s := range rep.Suppressed {
		doc.Suppressed = append(doc.Suppressed, jsonFinding{
			File: s.Finding.Pos.Filename, Line: s.Finding.Pos.Line,
			Analyzer: s.Finding.Rule, Message: s.Finding.Message, Reason: s.Reason,
		})
	}
	for _, e := range rep.Stale {
		doc.Stale = append(doc.Stale, jsonStale{
			Rule: e.Rule, PathPrefix: e.PathPrefix, Contains: e.Contains, Reason: e.Reason,
		})
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// findModuleRoot walks up from dir to the first directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}
