// Command loam-vet runs the repo's custom static-analysis suite
// (internal/analysis): determinism, lockdiscipline, nansafety, errwrap and
// guarddiscipline.
// It loads every package under the module root with stdlib go/parser — no
// build, no dependencies — and exits 1 on any finding not covered by the
// commented allowlist.
//
// Usage:
//
//	loam-vet [-hints] [-rules determinism,errwrap] [./... | dir]
//
// With a directory argument the module root is resolved by walking up to
// go.mod from there; the default "./..." resolves from the working
// directory. -hints appends a suggested rewrite to each finding (the
// `make lint-fix-hints` mode).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"loam/internal/analysis"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(out, errw io.Writer, args []string) int {
	fs := flag.NewFlagSet("loam-vet", flag.ContinueOnError)
	fs.SetOutput(errw)
	hints := fs.Bool("hints", false, "print a suggested rewrite under each finding")
	rules := fs.String("rules", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-15s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *rules != "" {
		want := map[string]bool{}
		for _, r := range strings.Split(*rules, ",") {
			want[strings.TrimSpace(r)] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
			}
		}
		if len(sel) == 0 {
			fmt.Fprintf(errw, "loam-vet: no analyzer matches -rules %q\n", *rules)
			return 2
		}
		analyzers = sel
	}

	target := "./..."
	if fs.NArg() > 0 {
		target = fs.Arg(0)
	}
	start := target
	if start == "./..." || start == "." {
		wd, err := os.Getwd()
		if err != nil {
			fmt.Fprintf(errw, "loam-vet: %v\n", err)
			return 2
		}
		start = wd
	}
	root, err := findModuleRoot(start)
	if err != nil {
		fmt.Fprintf(errw, "loam-vet: %v\n", err)
		return 2
	}

	prog, err := analysis.LoadProgram(root)
	if err != nil {
		fmt.Fprintf(errw, "loam-vet: %v\n", err)
		return 2
	}
	findings := analysis.RunAll(prog, analyzers, analysis.DefaultAllowlist())
	for _, f := range findings {
		fmt.Fprintln(out, f.String())
		if *hints && f.Suggestion != "" {
			fmt.Fprintf(out, "\thint: %s\n", f.Suggestion)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(out, "loam-vet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// findModuleRoot walks up from dir to the first directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}
