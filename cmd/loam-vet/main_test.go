package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module fixture\n\ngo 1.22\n"
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestRepoIsClean runs the real binary path against the repository itself:
// `make verify` relies on this exiting 0.
func TestRepoIsClean(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"../.."}); code != 0 {
		t.Fatalf("loam-vet on repo exited %d:\n%s%s", code, out.String(), errw.String())
	}
}

// TestSeededViolations proves each analyzer catches a planted violation with
// a non-zero exit — the acceptance check from ISSUE.md.
func TestSeededViolations(t *testing.T) {
	tests := []struct {
		rule  string
		files map[string]string
		want  string
	}{
		{
			rule: "determinism",
			files: map[string]string{"internal/p/p.go": `package p
import "math/rand"
func Roll() int { return rand.Intn(6) }
`},
			want: "[determinism]",
		},
		{
			rule: "lockdiscipline",
			files: map[string]string{"internal/cluster/cluster.go": `package cluster
import "sync"
type Cluster struct {
	mu       sync.RWMutex
	machines []int
}
func (c *Cluster) Bad() int { return len(c.machines) }
`},
			want: "[lockdiscipline]",
		},
		{
			rule: "nansafety",
			files: map[string]string{"internal/p/p.go": `package p
func Better(cost, bestCost float64) bool { return cost < bestCost }
`},
			want: "[nansafety]",
		},
		{
			rule: "errwrap",
			files: map[string]string{"internal/p/p.go": `package p
import "fmt"
func Wrap(err error) error { return fmt.Errorf("load state: %v", err) }
`},
			want: "[errwrap]",
		},
	}
	for _, tc := range tests {
		t.Run(tc.rule, func(t *testing.T) {
			root := writeModule(t, tc.files)
			var out, errw bytes.Buffer
			code := run(&out, &errw, []string{"-rules", tc.rule, root})
			if code != 1 {
				t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
			}
			if !strings.Contains(out.String(), tc.want) {
				t.Fatalf("output missing %q:\n%s", tc.want, out.String())
			}
		})
	}
}

func TestHintsMode(t *testing.T) {
	root := writeModule(t, map[string]string{"internal/p/p.go": `package p
import "math/rand"
func Roll() int { return rand.Intn(6) }
`})
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"-hints", root}); code != 1 {
		t.Fatalf("exit = %d, want 1:\n%s", code, errw.String())
	}
	if !strings.Contains(out.String(), "hint:") {
		t.Fatalf("-hints output has no hint line:\n%s", out.String())
	}
}

func TestListAndBadRules(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"-list"}); code != 0 {
		t.Fatalf("-list exit = %d", code)
	}
	for _, rule := range []string{"determinism", "lockdiscipline", "nansafety", "errwrap"} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("-list output missing %q:\n%s", rule, out.String())
		}
	}
	out.Reset()
	if code := run(&out, &errw, []string{"-rules", "nosuch", "../.."}); code != 2 {
		t.Fatalf("unknown -rules exit = %d, want 2", code)
	}
}
