package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module fixture\n\ngo 1.22\n"
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestRepoIsClean runs the real binary path against the repository itself:
// `make verify` relies on this exiting 0.
func TestRepoIsClean(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"../.."}); code != 0 {
		t.Fatalf("loam-vet on repo exited %d:\n%s%s", code, out.String(), errw.String())
	}
}

// TestSeededViolations proves each analyzer catches a planted violation with
// a non-zero exit — the acceptance check from ISSUE.md.
func TestSeededViolations(t *testing.T) {
	tests := []struct {
		rule  string
		files map[string]string
		want  string
	}{
		{
			rule: "determinism",
			files: map[string]string{"internal/p/p.go": `package p
import "math/rand"
func Roll() int { return rand.Intn(6) }
`},
			want: "[determinism]",
		},
		{
			rule: "lockdiscipline",
			files: map[string]string{"internal/cluster/cluster.go": `package cluster
import "sync"
type Cluster struct {
	mu       sync.RWMutex
	machines []int
}
func (c *Cluster) Bad() int { return len(c.machines) }
`},
			want: "[lockdiscipline]",
		},
		{
			rule: "nansafety",
			files: map[string]string{"internal/p/p.go": `package p
func Better(cost, bestCost float64) bool { return cost < bestCost }
`},
			want: "[nansafety]",
		},
		{
			rule: "errwrap",
			files: map[string]string{"internal/p/p.go": `package p
import "fmt"
func Wrap(err error) error { return fmt.Errorf("load state: %v", err) }
`},
			want: "[errwrap]",
		},
		{
			// The ISSUE.md acceptance demo: an append + string concat planted
			// in a helper reachable from PredictCost fails the lint gate.
			rule: "allocdiscipline",
			files: map[string]string{"internal/predictor/p.go": `package predictor
func PredictCost(xs []float64) float64 { return helper(xs, "q") }
func helper(xs []float64, name string) float64 {
	var grown []float64
	grown = append(xs, 1)
	name = name + "!"
	_ = name
	return grown[0]
}
`},
			want: "[allocdiscipline]",
		},
		{
			rule: "lockorder",
			files: map[string]string{"internal/p/p.go": `package p
import "sync"
type A struct {
	mu sync.Mutex
	b  *B
}
type B struct {
	mu sync.Mutex
	a  *A
}
func (a *A) One() {
	a.mu.Lock()
	a.b.mu.Lock()
	a.b.mu.Unlock()
	a.mu.Unlock()
}
func (b *B) Two() {
	b.mu.Lock()
	b.a.mu.Lock()
	b.a.mu.Unlock()
	b.mu.Unlock()
}
`},
			want: "[lockorder]",
		},
		{
			rule: "ctxflow",
			files: map[string]string{"internal/p/p.go": `package p
import "context"
func Go() context.Context { return context.Background() }
`},
			want: "[ctxflow]",
		},
	}
	for _, tc := range tests {
		t.Run(tc.rule, func(t *testing.T) {
			root := writeModule(t, tc.files)
			var out, errw bytes.Buffer
			code := run(&out, &errw, []string{"-rules", tc.rule, root})
			if code != 1 {
				t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
			}
			if !strings.Contains(out.String(), tc.want) {
				t.Fatalf("output missing %q:\n%s", tc.want, out.String())
			}
		})
	}
}

func TestHintsMode(t *testing.T) {
	root := writeModule(t, map[string]string{"internal/p/p.go": `package p
import "math/rand"
func Roll() int { return rand.Intn(6) }
`})
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"-hints", root}); code != 1 {
		t.Fatalf("exit = %d, want 1:\n%s", code, errw.String())
	}
	if !strings.Contains(out.String(), "hint:") {
		t.Fatalf("-hints output has no hint line:\n%s", out.String())
	}
}

func TestListAndBadRules(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"-list"}); code != 0 {
		t.Fatalf("-list exit = %d", code)
	}
	for _, rule := range []string{"determinism", "lockdiscipline", "nansafety", "errwrap"} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("-list output missing %q:\n%s", rule, out.String())
		}
	}
	out.Reset()
	if code := run(&out, &errw, []string{"-rules", "nosuch", "../.."}); code != 2 {
		t.Fatalf("unknown -rules exit = %d, want 2", code)
	}
}

// TestRootsFlag: -roots swaps the allocdiscipline serving-root set, letting a
// deployment gate its own entry points; malformed specs are a usage error.
func TestRootsFlag(t *testing.T) {
	files := map[string]string{"internal/x/x.go": `package x
func Serve() []float64 { return grow() }
func grow() []float64 { return make([]float64, 8) }
`}
	root := writeModule(t, files)
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"-rules", "allocdiscipline", root}); code != 0 {
		t.Fatalf("default roots should not reach internal/x, exit = %d:\n%s", code, out.String())
	}
	out.Reset()
	code := run(&out, &errw, []string{"-roots", "internal/x.Serve", "-rules", "allocdiscipline", root})
	if code != 1 || !strings.Contains(out.String(), "[allocdiscipline]") {
		t.Fatalf("custom root exit = %d:\n%s", code, out.String())
	}
	out.Reset()
	errw.Reset()
	if code := run(&out, &errw, []string{"-roots", "nodot", root}); code != 2 {
		t.Fatalf("malformed -roots exit = %d, want 2:\n%s", code, errw.String())
	}
	if !strings.Contains(errw.String(), "not pkgsuffix.Func") {
		t.Fatalf("malformed -roots error missing hint:\n%s", errw.String())
	}
}

// jsonGolden pins the -json report byte-for-byte: field names, ordering, and
// the exact rendering of findings, suppressions and the empty stale array.
// CI consumes this format; changing it is an interface change.
const jsonGolden = `{
  "findings": [
    {
      "file": "internal/p/p.go",
      "line": 2,
      "analyzer": "determinism",
      "message": "import of math/rand is forbidden: all randomness must flow through internal/simrand's named streams"
    }
  ],
  "suppressed": [
    {
      "file": "internal/simrand/r.go",
      "line": 2,
      "analyzer": "determinism",
      "message": "import of math/rand is forbidden: all randomness must flow through internal/simrand's named streams",
      "reason": "simrand IS the sanctioned randomness boundary: it wraps math/rand's PRNG core behind named, seed-derivable streams; nothing else may import it"
    }
  ],
  "stale": []
}
`

func TestJSONGolden(t *testing.T) {
	root := writeModule(t, map[string]string{
		"internal/p/p.go": `package p
import "math/rand"
func Roll() int { return rand.Intn(6) }
`,
		"internal/simrand/r.go": `package simrand
import "math/rand"
func New(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
`,
	})
	var out, errw bytes.Buffer
	code := run(&out, &errw, []string{"-rules", "determinism", "-json", root})
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (one active finding):\n%s%s", code, out.String(), errw.String())
	}
	if out.String() != jsonGolden {
		t.Fatalf("-json output drifted from golden:\n--- got ---\n%s--- want ---\n%s", out.String(), jsonGolden)
	}
}

// TestStaleAllowlistFailsRun: on a module where no allowlist entry matches
// anything, the stale entries alone force exit 1 — suppressions that suppress
// nothing are bugs waiting to hide the next real finding.
func TestStaleAllowlistFailsRun(t *testing.T) {
	root := writeModule(t, map[string]string{"internal/p/p.go": `package p
func F() int { return 1 }
`})
	var out, errw bytes.Buffer
	code := run(&out, &errw, []string{root})
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stale allowlist):\n%s%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "stale allowlist entr") ||
		!strings.Contains(out.String(), "-prune-allowlist") {
		t.Fatalf("stale summary missing:\n%s", out.String())
	}

	// -prune-allowlist prints one removal hint per stale entry.
	out.Reset()
	if code := run(&out, &errw, []string{"-prune-allowlist", root}); code != 1 {
		t.Fatalf("-prune-allowlist exit = %d, want 1:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "stale allowlist entry: rule=") {
		t.Fatalf("-prune-allowlist output lacks removal hints:\n%s", out.String())
	}
}

// TestPruneAllowlistTightOnRepo: against the real repository every entry
// matches a live finding, so prune mode reports a tight allowlist and exits 0.
func TestPruneAllowlistTightOnRepo(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"-prune-allowlist", "../.."}); code != 0 {
		t.Fatalf("repo prune exit = %d:\n%s%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "allowlist is tight") {
		t.Fatalf("expected tight-allowlist confirmation:\n%s", out.String())
	}
}
