// Command loam-bench regenerates the paper's tables and figures from the
// simulated MaxCompute deployment.
//
// Usage:
//
//	loam-bench [-run all|fig1|table1|fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig15|fig16|sec73|thm1|ext1|ext2|ext3|serve|guard|lifecycle|recover|perf|fleet]
//	           [-seed N] [-scale F] [-epochs N] [-eval N] [-tiny] [-quiet] [-metrics]
//	           [-benchout FILE] [-fleetout FILE]
//
// Each experiment prints the same rows/series the paper reports; absolute
// numbers come from the simulator, shapes are the reproduction target (see
// EXPERIMENTS.md).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"loam/internal/atomicio"
	"loam/internal/experiments"
	"loam/internal/walltime"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "loam-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("loam-bench", flag.ContinueOnError)
	var (
		runSpec = fs.String("run", "all", "comma-separated experiment ids (all, fig1, table1, fig5, fig6, fig7, fig8, fig9, fig10, fig11, fig12, fig15, fig16, sec73, thm1, ext1, ext2, ext3, serve, guard, lifecycle, recover, perf, fleet)")
		seed    = fs.Uint64("seed", 42, "root seed for the whole simulation")
		scale   = fs.Float64("scale", 1, "workload scale multiplier (5 ≈ paper scale)")
		epochs  = fs.Int("epochs", 0, "override training epochs (0 = default)")
		evalQ   = fs.Int("eval", 0, "override test queries per project (0 = default)")
		tiny    = fs.Bool("tiny", false, "tiny configuration for smoke runs")
		quiet   = fs.Bool("quiet", false, "suppress progress logging")
		metrics = fs.Bool("metrics", false, "dump the combined telemetry snapshot after the experiments")
		benchout = fs.String("benchout", "", "write the perf experiment's machine-readable results to this JSON file (requires -run perf)")
		baseline = fs.String("baseline", "", "compare the perf experiment against this committed baseline JSON (requires -run perf); exits non-zero on a >10% machine-scaled regression")
		fleetout = fs.String("fleetout", "", "write the fleet experiment's machine-readable results to this JSON file (requires -run fleet)")
	)
	fs.SetOutput(errw)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.Default()
	if *tiny {
		cfg = experiments.Tiny()
	}
	cfg.Seed = *seed
	if *scale > 0 {
		cfg.WorkloadScale *= *scale
	}
	if *epochs > 0 {
		cfg.Epochs = *epochs
	}
	if *evalQ > 0 {
		cfg.EvalQueries = *evalQ
	}
	if !*quiet {
		cfg.Log = errw
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*runSpec, ",") {
		want[strings.TrimSpace(strings.ToLower(id))] = true
	}
	all := want["all"]
	has := func(id string) bool { return all || want[id] }

	sw := walltime.Start()
	env := experiments.NewEnv(cfg)

	section := func(id string) {
		fmt.Fprintf(out, "\n==== %s ====\n", id)
	}

	if has("fig1") {
		section("fig1")
		env.Fig1().Render(out)
	}
	if has("table1") {
		section("table1")
		env.Table1().Render(out)
	}
	if has("fig5") {
		section("fig5")
		env.Fig5().Render(out)
	}
	if has("fig15") {
		section("fig15")
		env.Fig15().Render(out)
	}

	needF6 := has("fig6") || has("fig7") || has("fig8") || has("fig9") ||
		has("fig10") || has("fig11") || has("sec73")
	var f6 *experiments.Fig6Result
	if needF6 {
		var err error
		f6, err = env.Fig6()
		if err != nil {
			return err
		}
	}
	if has("fig6") {
		section("fig6")
		f6.Render(out)
	}
	if has("fig7") {
		section("fig7")
		env.Fig7(f6).Render(out)
	}
	if has("fig9") {
		section("fig9")
		env.Fig9(f6).Render(out)
	}
	if has("fig11") {
		section("fig11")
		r, err := env.Fig11(f6)
		if err != nil {
			return err
		}
		r.Render(out)
	}
	if has("fig10") {
		section("fig10")
		r, err := env.Fig10(f6)
		if err != nil {
			return err
		}
		r.Render(out)
	}
	if has("fig8") {
		section("fig8")
		r, err := env.Fig8(f6)
		if err != nil {
			return err
		}
		r.Render(out)
	}
	if has("thm1") {
		section("thm1")
		env.Thm1().Render(out)
	}
	if has("ext1") {
		section("ext1")
		env.Ext1().Render(out)
	}
	if has("ext2") {
		section("ext2")
		r, err := env.Ext2()
		if err != nil {
			return err
		}
		r.Render(out)
	}
	if has("ext3") {
		section("ext3")
		r, err := env.Ext3()
		if err != nil {
			return err
		}
		r.Render(out)
	}
	if has("fig12") {
		section("fig12")
		env.Fig12().Render(out)
	}
	if has("fig16") {
		section("fig16")
		env.Fig16().Render(out)
	}
	if has("sec73") {
		section("sec73")
		env.Sec73(f6).Render(out)
	}
	if has("serve") {
		section("serve")
		r, err := env.Serve(context.Background())
		if err != nil {
			return err
		}
		r.Render(out)
	}
	if has("guard") {
		section("guard")
		r, err := env.Guard()
		if err != nil {
			return err
		}
		r.Render(out)
	}
	if has("lifecycle") {
		section("lifecycle")
		r, err := env.Lifecycle()
		if err != nil {
			return err
		}
		r.Render(out)
	}
	if has("recover") {
		section("recover")
		r, err := env.Recover(context.Background())
		if err != nil {
			return err
		}
		r.Render(out)
	}
	if has("perf") {
		section("perf")
		r, err := env.Perf(context.Background())
		if err != nil {
			return err
		}
		r.Render(out)
		if *benchout != "" {
			data, err := json.MarshalIndent(r, "", "  ")
			if err != nil {
				return err
			}
			if err := atomicio.Default.WriteFile(*benchout, append(data, '\n')); err != nil {
				return fmt.Errorf("write %s: %w", *benchout, err)
			}
			fmt.Fprintf(out, "wrote %s\n", *benchout)
		}
		if *baseline != "" {
			if err := gateBaseline(out, r, *baseline); err != nil {
				return err
			}
		}
	}

	if has("fleet") {
		section("fleet")
		r, err := env.FleetServe(context.Background())
		if err != nil {
			return err
		}
		r.Render(out)
		if *fleetout != "" {
			data, err := json.MarshalIndent(r, "", "  ")
			if err != nil {
				return err
			}
			if err := atomicio.Default.WriteFile(*fleetout, append(data, '\n')); err != nil {
				return fmt.Errorf("write %s: %w", *fleetout, err)
			}
			fmt.Fprintf(out, "wrote %s\n", *fleetout)
		}
	}

	if *metrics {
		// The snapshot is deterministic (stable-ordered, no wall-clock
		// values): identically-seeded runs print identical metrics sections.
		section("metrics")
		if err := env.Metrics().WriteText(out); err != nil {
			return err
		}
	}

	fmt.Fprintf(out, "\ntotal: %.1fs\n", sw.Seconds())
	return nil
}

// gateBaseline is the perf trend gate: it loads the committed baseline,
// scales its thresholds by the two machines' calibration ratio, and fails
// the run on any >10% regression (or a broken identical-choices bit).
func gateBaseline(out io.Writer, r *experiments.PerfResult, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var b experiments.PerfBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	fmt.Fprintf(out, "baseline %s: warm cache %.2fx the committed f64 baseline (machine-scaled)\n",
		path, r.BaselineSpeedup(&b))
	if bad := r.CompareBaseline(&b); len(bad) > 0 {
		for _, msg := range bad {
			fmt.Fprintf(out, "baseline regression: %s\n", msg)
		}
		return fmt.Errorf("perf regressed against %s (%d violations)", path, len(bad))
	}
	fmt.Fprintf(out, "baseline gate: pass\n")
	return nil
}
