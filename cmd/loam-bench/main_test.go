package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-tiny", "-quiet", "-run", "fig1,table1"}, &out, &errw)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errw.String())
	}
	s := out.String()
	for _, want := range []string{"==== fig1 ====", "Figure 1", "==== table1 ====", "Table 1", "total:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "Figure 6") {
		t.Fatal("unrequested experiment ran")
	}
}

func TestRunThm1AndFig15(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-tiny", "-quiet", "-run", "thm1,fig15"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Theorem 1") || !strings.Contains(out.String(), "Q-Q") {
		t.Fatalf("output incomplete:\n%s", out.String())
	}
}

// metricsSection extracts the demarcated metrics dump from a full run's
// output; everything around it (wall-clock totals, serving throughput) is
// timing-dependent and excluded from the determinism comparison.
func metricsSection(t *testing.T, s string) string {
	t.Helper()
	_, rest, ok := strings.Cut(s, "==== metrics ====")
	if !ok {
		t.Fatalf("no metrics section in output:\n%s", s)
	}
	body, _, _ := strings.Cut(rest, "\ntotal:")
	return body
}

// TestRunServeMetricsDeterministic is the acceptance check for the -metrics
// flag: the serve experiment runs with telemetry on, the dump is non-empty
// and stable-ordered, and two identically-seeded runs print byte-identical
// metrics sections despite parallel serving and wall-clock jitter.
func TestRunServeMetricsDeterministic(t *testing.T) {
	bench := func() string {
		var out, errw bytes.Buffer
		if err := run([]string{"-tiny", "-quiet", "-run", "serve", "-metrics"}, &out, &errw); err != nil {
			t.Fatalf("run: %v\nstderr: %s", err, errw.String())
		}
		return out.String()
	}
	first := bench()
	sec := metricsSection(t, first)
	for _, want := range []string{
		"counter serve.optimize.total",
		"counter train.runs 1",
		"counter exec.executions",
		"gauge cluster.cpu_idle",
		"timer serve.optimize.latency",
	} {
		if !strings.Contains(sec, want) {
			t.Fatalf("metrics section missing %q:\n%s", want, sec)
		}
	}
	// Stable order: the text exposition sorts each section by name.
	names := counterNames(sec)
	if len(names) < 5 {
		t.Fatalf("suspiciously few counters: %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("counters not name-sorted: %q before %q", names[i-1], names[i])
		}
	}
	if again := metricsSection(t, bench()); again != sec {
		t.Fatalf("same-seed metrics sections differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", sec, again)
	}
}

// counterNames lists the counter names in exposition order.
func counterNames(sec string) []string {
	var names []string
	for _, line := range strings.Split(sec, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 3 && fields[0] == "counter" {
			names = append(names, fields[1])
		}
	}
	return names
}

// TestRunGuardMetricsDeterministic is the acceptance check for the guarded
// serving experiment: `-run guard` walks the breaker through trip → cooldown
// → half-open probe → recovery with 100% availability, the guard.* counters
// render in the stable-ordered metrics dump, and two identically-seeded runs
// print byte-identical guard sections and metrics sections.
func TestRunGuardMetricsDeterministic(t *testing.T) {
	bench := func() string {
		var out, errw bytes.Buffer
		if err := run([]string{"-tiny", "-quiet", "-run", "guard", "-metrics"}, &out, &errw); err != nil {
			t.Fatalf("run: %v\nstderr: %s", err, errw.String())
		}
		return out.String()
	}
	first := bench()
	for _, want := range []string{
		"==== guard ====",
		"availability 100%",
		"trip(s)",
		"half-open probe window(s)",
	} {
		if !strings.Contains(first, want) {
			t.Fatalf("guard section missing %q:\n%s", want, first)
		}
	}
	sec := metricsSection(t, first)
	for _, want := range []string{
		"counter guard.serve.total 30",
		"counter guard.serve.learned 15",
		"counter guard.fallback.native 15",
		"counter guard.fallback.reason.breaker_open",
		"counter guard.fallback.reason.predictor_error",
		"counter guard.inject.predictor_errors",
		"counter guard.breaker.opened 2",
		"counter guard.breaker.half_opened 2",
		"counter guard.breaker.closed 1",
		"gauge guard.breaker.state",
	} {
		if !strings.Contains(sec, want) {
			t.Fatalf("metrics section missing %q:\n%s", want, sec)
		}
	}
	names := counterNames(sec)
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("counters not name-sorted: %q before %q", names[i-1], names[i])
		}
	}
	second := bench()
	guardSection := func(s string) string {
		_, rest, ok := strings.Cut(s, "==== guard ====")
		if !ok {
			t.Fatalf("no guard section:\n%s", s)
		}
		body, _, _ := strings.Cut(rest, "====")
		return body
	}
	if guardSection(second) != guardSection(first) {
		t.Fatalf("same-seed guard sections differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			guardSection(first), guardSection(second))
	}
	if again := metricsSection(t, second); again != sec {
		t.Fatalf("same-seed metrics sections differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", sec, again)
	}
}

// TestRunPerfBaselineGate drives the perf trend gate end to end: a generous
// committed baseline passes (and prints the machine-scaled speedup), an
// absurdly demanding one fails the run with the regressions spelled out.
func TestRunPerfBaselineGate(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	generous := write("generous.json",
		`{"calib_ns": 0, "predict_ns_per_op": 1e12, "warm_qps": 1e-3}`)
	var out, errw bytes.Buffer
	if err := run([]string{"-tiny", "-quiet", "-run", "perf", "-baseline", generous}, &out, &errw); err != nil {
		t.Fatalf("generous baseline failed the gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "baseline gate: pass") {
		t.Fatalf("no gate verdict in output:\n%s", out.String())
	}

	impossible := write("impossible.json",
		`{"calib_ns": 0, "predict_ns_per_op": 1e-3, "warm_qps": 1e12}`)
	out.Reset()
	err := run([]string{"-tiny", "-quiet", "-run", "perf", "-baseline", impossible}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("impossible baseline passed the gate (err=%v)", err)
	}
	for _, want := range []string{"baseline regression", "PredictCost", "warm select"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("gate output missing %q:\n%s", want, out.String())
		}
	}

	if err := run([]string{"-tiny", "-quiet", "-run", "perf", "-baseline", filepath.Join(dir, "absent.json")}, &out, &errw); err == nil {
		t.Fatal("missing baseline file accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &out, &errw); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunUnknownExperimentIsNoop(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-tiny", "-quiet", "-run", "nosuch"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "====") {
		t.Fatal("unknown experiment produced sections")
	}
}

// TestRunLifecycleMetricsDeterministic is the acceptance check for the model
// lifecycle experiment: `-run lifecycle` drives drift → retrain →
// shadow-score → hot-swap → sentinel-tripped rollback with 100% availability
// throughout, the lifecycle.* counters render in the stable-ordered metrics
// dump, and two identically-seeded runs print byte-identical lifecycle and
// metrics sections.
func TestRunLifecycleMetricsDeterministic(t *testing.T) {
	bench := func() string {
		var out, errw bytes.Buffer
		if err := run([]string{"-tiny", "-quiet", "-run", "lifecycle", "-metrics"}, &out, &errw); err != nil {
			t.Fatalf("run: %v\nstderr: %s", err, errw.String())
		}
		return out.String()
	}
	first := bench()
	for _, want := range []string{
		"==== lifecycle ====",
		"availability 100%",
		"promote  -> v2",
		"rollback -> v1",
	} {
		if !strings.Contains(first, want) {
			t.Fatalf("lifecycle section missing %q:\n%s", want, first)
		}
	}
	sec := metricsSection(t, first)
	for _, want := range []string{
		"counter lifecycle.feedback.harvested 60",
		"counter lifecycle.drift.signals",
		"counter lifecycle.retrain.runs",
		"counter lifecycle.promote",
		"counter lifecycle.rollback",
		"counter guard.quarantine.trips",
		"counter guard.quarantine.released",
		"gauge model.version",
		"gauge lifecycle.feedback.size",
	} {
		if !strings.Contains(sec, want) {
			t.Fatalf("metrics section missing %q:\n%s", want, sec)
		}
	}
	second := bench()
	lifecycleSection := func(s string) string {
		_, rest, ok := strings.Cut(s, "==== lifecycle ====")
		if !ok {
			t.Fatalf("no lifecycle section:\n%s", s)
		}
		body, _, _ := strings.Cut(rest, "====")
		return body
	}
	if lifecycleSection(second) != lifecycleSection(first) {
		t.Fatalf("same-seed lifecycle sections differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			lifecycleSection(first), lifecycleSection(second))
	}
	if again := metricsSection(t, second); again != sec {
		t.Fatalf("same-seed metrics sections differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", sec, again)
	}
}

// TestRunRecoverMetricsDeterministic is the acceptance check for the
// kill-point chaos harness: `-run recover` sweeps an injected crash across
// every durable write point of a forced-drift lifecycle run, every point
// recovers to a consistent servable version with 100% post-recovery
// availability, the durable.* counters render in the stable-ordered metrics
// dump, and two identically-seeded runs print byte-identical recover and
// metrics sections.
func TestRunRecoverMetricsDeterministic(t *testing.T) {
	bench := func() string {
		var out, errw bytes.Buffer
		if err := run([]string{"-tiny", "-quiet", "-run", "recover", "-metrics"}, &out, &errw); err != nil {
			t.Fatalf("run: %v\nstderr: %s", err, errw.String())
		}
		return out.String()
	}
	first := bench()
	for _, want := range []string{
		"==== recover ====",
		"post-recovery availability 100%",
		"promote  -> v2",
		"rollback -> v1",
		"restore",
		"redeploy",
		"torn-tail",
		"fsck clean at every point",
		"fleet grants: 3 tenants survive a registry restart",
	} {
		if !strings.Contains(first, want) {
			t.Fatalf("recover section missing %q:\n%s", want, first)
		}
	}
	sec := metricsSection(t, first)
	for _, want := range []string{
		"counter durable.checkpoints",
		"counter durable.restores",
		"counter durable.errors 0",
		"counter durable.journal.appends",
		"counter durable.journal.replayed",
		"counter durable.journal.truncated",
		"counter durable.grants.saves",
		"counter durable.grants.restores 1",
		"gauge durable.version",
	} {
		if !strings.Contains(sec, want) {
			t.Fatalf("metrics section missing %q:\n%s", want, sec)
		}
	}
	second := bench()
	recoverSection := func(s string) string {
		_, rest, ok := strings.Cut(s, "==== recover ====")
		if !ok {
			t.Fatalf("no recover section:\n%s", s)
		}
		body, _, _ := strings.Cut(rest, "====")
		return body
	}
	if recoverSection(second) != recoverSection(first) {
		t.Fatalf("same-seed recover sections differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			recoverSection(first), recoverSection(second))
	}
	if again := metricsSection(t, second); again != sec {
		t.Fatalf("same-seed metrics sections differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", sec, again)
	}
}

// TestRunFleetMetricsDeterministic is the acceptance check for multi-tenant
// fleet serving: `-run fleet` routes zipfian traffic for the synthetic tenant
// fleet plus two real deployments through the sharded registry, survives the
// tenant-skew spike with 100% availability and the cache budget respected at
// every wave boundary, the fleet.* counters render in the stable-ordered
// metrics dump, and two identically-seeded runs print byte-identical fleet
// and metrics sections despite parallel routing.
func TestRunFleetMetricsDeterministic(t *testing.T) {
	bench := func() string {
		var out, errw bytes.Buffer
		if err := run([]string{"-tiny", "-quiet", "-run", "fleet", "-metrics"}, &out, &errw); err != nil {
			t.Fatalf("run: %v\nstderr: %s", err, errw.String())
		}
		return out.String()
	}
	first := bench()
	for _, want := range []string{
		"==== fleet ====",
		"availability 100.0%",
		"warmup", "steady", "spike", "recover",
	} {
		if !strings.Contains(first, want) {
			t.Fatalf("fleet section missing %q:\n%s", want, first)
		}
	}
	if strings.Contains(first, "OVER") {
		t.Fatalf("cache budget exceeded at a wave boundary:\n%s", first)
	}
	sec := metricsSection(t, first)
	for _, want := range []string{
		"counter fleet.route.total",
		"counter fleet.admission.admitted",
		"counter fleet.admission.shed",
		"counter fleet.admission.lane.recurring",
		"counter fleet.budget.rebalances 4",
		"counter fleet.route.errors 0",
		"counter fleet.route.unknown_tenant 0",
		"gauge fleet.cache.budget",
		"gauge fleet.tenants.active",
		"timer fleet.route.latency",
	} {
		if !strings.Contains(sec, want) {
			t.Fatalf("metrics section missing %q:\n%s", want, sec)
		}
	}
	second := bench()
	fleetSection := func(s string) string {
		_, rest, ok := strings.Cut(s, "==== fleet ====")
		if !ok {
			t.Fatalf("no fleet section:\n%s", s)
		}
		body, _, _ := strings.Cut(rest, "====")
		return body
	}
	if fleetSection(second) != fleetSection(first) {
		t.Fatalf("same-seed fleet sections differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			fleetSection(first), fleetSection(second))
	}
	if again := metricsSection(t, second); again != sec {
		t.Fatalf("same-seed metrics sections differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", sec, again)
	}
}
