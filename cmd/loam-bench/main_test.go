package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-tiny", "-quiet", "-run", "fig1,table1"}, &out, &errw)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errw.String())
	}
	s := out.String()
	for _, want := range []string{"==== fig1 ====", "Figure 1", "==== table1 ====", "Table 1", "total:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "Figure 6") {
		t.Fatal("unrequested experiment ran")
	}
}

func TestRunThm1AndFig15(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-tiny", "-quiet", "-run", "thm1,fig15"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Theorem 1") || !strings.Contains(out.String(), "Q-Q") {
		t.Fatalf("output incomplete:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &out, &errw); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunUnknownExperimentIsNoop(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-tiny", "-quiet", "-run", "nosuch"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "====") {
		t.Fatal("unknown experiment produced sections")
	}
}
