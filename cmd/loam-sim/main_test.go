package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunEndToEnd(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-days", "6", "-templates", "5", "-qpd", "3", "-steer", "3"}, &out, &errw)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{"project \"demo\"", "history:", "deployed LOAM", "steered 3 queries"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-nope"}, &out, &errw); err == nil {
		t.Fatal("bad flag accepted")
	}
}
