// Command loam-sim stands up a simulated MaxCompute project, builds query
// history, trains a LOAM deployment, and steers a day's queries — printing
// each optimizer decision. A quick way to watch the whole pipeline operate.
//
// Usage:
//
//	loam-sim [-seed N] [-days N] [-templates N] [-qpd F] [-steer N] [-v]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"loam"
	"loam/internal/history"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "loam-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("loam-sim", flag.ContinueOnError)
	var (
		seed      = fs.Uint64("seed", 7, "simulation seed")
		days      = fs.Int("days", 12, "history days before deployment")
		templates = fs.Int("templates", 10, "workload templates")
		qpd       = fs.Float64("qpd", 8, "mean queries per day per template")
		steer     = fs.Int("steer", 10, "queries to steer after deployment")
		verbose   = fs.Bool("v", false, "print chosen plans")
	)
	fs.SetOutput(errw)
	if err := fs.Parse(args); err != nil {
		return err
	}

	sim := loam.NewSimulation(*seed, loam.DefaultSimulationConfig())
	cfg := loam.DefaultProjectConfig("demo")
	cfg.Workload.NumTemplates = *templates
	cfg.Workload.QueriesPerDayMean = *qpd
	ps := sim.AddProject(cfg)

	fmt.Fprintf(out, "project %q: %d tables, %d columns\n",
		cfg.Name, len(ps.Project.Tables), ps.Project.NumColumns())

	trainDays := *days * 3 / 4
	if trainDays < 1 {
		trainDays = 1
	}
	ps.RunDays(0, *days)
	fmt.Fprintf(out, "history: %d executions over %d days, avg cost %.0f\n",
		ps.Repo.Len(), *days, history.AvgCost(ps.Repo.All()))

	dcfg := loam.DefaultDeployConfig()
	dcfg.TrainDays = trainDays
	dcfg.TestDays = *days - trainDays
	dep, err := ps.Deploy(dcfg)
	if err != nil {
		return err
	}
	met := dep.Predictor().Metrics()
	fmt.Fprintf(out, "deployed LOAM: %d training plans, %.1fs training, %.1f MB model\n",
		dep.TrainSize, met.TrainSeconds, float64(met.ModelBytes)/1e6)

	day := *days
	queries := ps.Gen.Day(day)
	if len(queries) > *steer {
		queries = queries[:*steer]
	}
	var totalDefault, totalChosen float64
	for _, q := range queries {
		choice, err := dep.Optimize(q)
		if err != nil {
			return err
		}
		rec := dep.ExecuteChoice(choice)
		defCost := ps.Executor.Flight(choice.Candidates[0], day, 1, ps.ExecOptions(q))
		totalDefault += defCost
		totalChosen += rec.CPUCost
		// Fallback choices carry no learned estimate (and a native re-plan
		// has no candidate index): render the gaps instead of indexing.
		est := "-"
		idx := "-"
		if choice.ChosenIdx >= 0 {
			idx = fmt.Sprintf("#%d", choice.ChosenIdx)
		}
		if choice.Origin == loam.OriginLearned {
			est = fmt.Sprintf("%.0f", choice.Estimates[choice.ChosenIdx])
		}
		fmt.Fprintf(out, "%-28s cands=%d chosen=%-3s origin=%-16s est=%-10s actual=%-10.0f default=%-10.0f knobs=%v\n",
			q.ID, len(choice.Candidates), idx, choice.Origin,
			est, rec.CPUCost, defCost, choice.Chosen.Knobs)
		if *verbose {
			fmt.Fprint(out, choice.Chosen.String())
		}
	}
	if totalDefault > 0 {
		fmt.Fprintf(out, "steered %d queries: total cost %.0f vs default %.0f (%.1f%% change)\n",
			len(queries), totalChosen, totalDefault, (totalChosen/totalDefault-1)*100)
	}
	return nil
}
