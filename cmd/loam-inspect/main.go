// Command loam-inspect is the operator's magnifying glass over a simulated
// project: it reports the catalog, how far the optimizer-visible statistics
// have drifted from the ground truth (Challenge C2 made visible), the
// workload's templates, and — for a chosen query — the full candidate set
// with the native optimizer's rough costs, the simulator's true work, and
// the stage decomposition.
//
// Usage:
//
//	loam-inspect [-seed N] [-day N] [-section catalog|stats|templates|query|all]
//	             [-template N] [-tables N] [-statsprob F]
//	loam-inspect metrics [-seed N]
//	loam-inspect fsck <store-dir>
//
// The metrics section (also reachable as -section metrics) is opt-in and not
// part of "all": it runs a small end-to-end demo — history, a tiny training
// run, a handful of steered queries — and dumps the combined telemetry
// snapshot plus the reporting-only wall timings.
//
// The fsck subcommand checks a durable model store offline (see DESIGN.md
// "Durability & recovery contract"): the manifest frame, every referenced
// snapshot's checksum, journal segment integrity, and the fleet grant table
// if present. It prints a deterministic report and exits non-zero when the
// store is corrupt; repairable residue of a crash (a torn journal tail, an
// orphaned snapshot) is reported but does not fail the check.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"loam"
	"loam/internal/durable"
	"loam/internal/exec"
	"loam/internal/nativeopt"
	"loam/internal/stats"
	"loam/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "loam-inspect:", err)
		os.Exit(1)
	}
}

func run(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("loam-inspect", flag.ContinueOnError)
	var (
		seed      = fs.Uint64("seed", 7, "simulation seed")
		day       = fs.Int("day", 3, "catalog/statistics day to inspect")
		section   = fs.String("section", "all", "catalog|stats|templates|query|all")
		template  = fs.Int("template", 0, "template index for -section query")
		tables    = fs.Int("tables", 20, "tables in the generated project")
		statsProb = fs.Float64("statsprob", 0.5, "probability a table has column statistics")
	)
	fs.SetOutput(errw)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		switch fs.Arg(0) {
		case "metrics":
			if fs.NArg() > 1 {
				return fmt.Errorf("unknown arguments %q after \"metrics\"", fs.Args()[1:])
			}
			*section = "metrics"
		case "fsck":
			if fs.NArg() != 2 {
				return fmt.Errorf("usage: loam-inspect fsck <store-dir>")
			}
			return fsck(out, fs.Arg(1))
		default:
			return fmt.Errorf("unknown arguments %q (subcommands: \"metrics\", \"fsck <store-dir>\")", fs.Args())
		}
	}

	sim := loam.NewSimulation(*seed, loam.DefaultSimulationConfig())
	cfg := loam.DefaultProjectConfig("inspect")
	cfg.Archetype.NumTables = *tables
	cfg.Workload.NumTemplates = 10
	cfg.StatsPolicy = stats.Policy{
		ColumnStatsProb:  *statsProb,
		FreshProb:        0.5,
		MaxStalenessDays: 20,
		NDVNoise:         0.5,
	}
	ps := sim.AddProject(cfg)

	want := func(s string) bool { return *section == "all" || *section == s }
	if want("catalog") {
		catalog(out, ps, *day)
	}
	if want("stats") {
		statsDivergence(out, ps, *day)
	}
	if want("templates") {
		templates(out, ps)
	}
	if want("query") {
		if err := queryDetail(out, ps, *template, *day); err != nil {
			return err
		}
	}
	// Opt-in only: the metrics demo trains a model, so it never rides along
	// with "all".
	if *section == "metrics" {
		if err := metricsDemo(out, sim, ps); err != nil {
			return err
		}
	}
	return nil
}

// fsck checks a durable store offline and renders the deterministic report;
// a store with integrity problems makes the command exit non-zero.
func fsck(out io.Writer, dir string) error {
	if _, err := os.Stat(dir); err != nil {
		return fmt.Errorf("fsck: %w", err)
	}
	rep := durable.Fsck(dir)
	rep.Render(out)
	if !rep.OK() {
		return fmt.Errorf("fsck: %d problem(s) in %s", len(rep.Problems), dir)
	}
	return nil
}

// metricsDemo exercises the full pipeline against the simulation's shared
// registry — production history, a tiny training run, a few steered queries —
// then dumps the deterministic snapshot and the wall timings.
func metricsDemo(out io.Writer, sim *loam.Simulation, ps *loam.ProjectSim) error {
	ps.RunDays(0, 8)
	dcfg := loam.DefaultDeployConfig()
	dcfg.TrainDays = 6
	dcfg.TestDays = 2
	dcfg.DomainPlans = 32
	dcfg.Predictor.Epochs = 3
	dep, err := ps.Deploy(dcfg, loam.WithMetrics(sim.Telemetry()))
	if err != nil {
		return err
	}
	for i, q := range ps.Gen.Day(6) {
		if i == 5 {
			break
		}
		if _, err := dep.Optimize(q); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "== metrics (deterministic snapshot) ==\n")
	if err := dep.Metrics().WriteText(out); err != nil {
		return err
	}
	fmt.Fprintf(out, "\n== wall timings (reporting-only, excluded from the snapshot) ==\n")
	return telemetry.WriteWallText(out, dep.Telemetry().WallTimings())
}

func catalog(out io.Writer, ps *loam.ProjectSim, day int) {
	fmt.Fprintf(out, "== catalog (%s, day %d) ==\n", ps.Config.Name, day)
	fmt.Fprintf(out, "%d tables, %d columns, %d alive today\n",
		len(ps.Project.Tables), ps.Project.NumColumns(), len(ps.Project.AliveTables(day)))
	fmt.Fprintf(out, "%-14s %12s %6s %6s %6s %s\n", "table", "rows", "parts", "cols", "temp", "lifespan")
	for _, t := range ps.Project.Tables {
		fmt.Fprintf(out, "%-14s %12d %6d %6d %6v %d days\n",
			t.ID, t.RowsAt(day), t.Partitions, len(t.Columns), t.Temp, t.LifespanDays)
	}
}

func statsDivergence(out io.Writer, ps *loam.ProjectSim, day int) {
	fmt.Fprintf(out, "\n== statistics view vs ground truth (day %d) ==\n", day)
	v := ps.View(day)
	fmt.Fprintf(out, "%-14s %10s %10s %8s %9s %9s\n",
		"table", "true rows", "est rows", "err%", "colStats", "staleness")
	missing := 0
	for _, t := range ps.Project.AliveTables(day) {
		ts, ok := v.Tables[t.ID]
		if !ok {
			continue
		}
		trueRows := t.RowsAt(day)
		errPct := 0.0
		if trueRows > 0 {
			errPct = (float64(ts.Rows)/float64(trueRows) - 1) * 100
		}
		has := "yes"
		if ts.Columns == nil {
			has = "MISSING"
			missing++
		}
		fmt.Fprintf(out, "%-14s %10d %10d %7.1f%% %9s %6d d\n",
			t.ID, trueRows, ts.Rows, errPct, has, day-ts.SnapshotDay)
	}
	fmt.Fprintf(out, "%d/%d tables lack column statistics — join reordering disabled for queries touching them (§2.1)\n",
		missing, len(v.Tables))
}

func templates(out io.Writer, ps *loam.ProjectSim) {
	fmt.Fprintf(out, "\n== workload templates ==\n")
	for i, tpl := range ps.Gen.Templates {
		hard := 0
		for _, specs := range tpl.Filters {
			for _, s := range specs {
				if s.PushDifficult {
					hard++
				}
			}
		}
		fmt.Fprintf(out, "#%-2d %-22s tables=%d joins=%d filters=%d(hard %d) aggs=%d sigma=%.2f qpd=%.1f\n",
			i, tpl.ID, len(tpl.Tables), len(tpl.Joins), len(tpl.Filters), hard, len(tpl.Aggs),
			tpl.NoiseSigma, tpl.QueriesPerDay)
	}
}

func queryDetail(out io.Writer, ps *loam.ProjectSim, template, day int) error {
	if template < 0 || template >= len(ps.Gen.Templates) {
		return fmt.Errorf("template %d out of range [0,%d)", template, len(ps.Gen.Templates))
	}
	tpl := ps.Gen.Templates[template]
	q := tpl.Instantiate(ps.Rng("inspect"), day)
	fmt.Fprintf(out, "\n== query %s ==\n", q.ID)
	fmt.Fprintf(out, "tables: %s\n", strings.Join(q.Tables, ", "))

	native := nativeopt.New(ps.View(day))
	cands := ps.Explorer(day).Candidates(q)
	type row struct {
		idx   int
		knobs string
		rough float64
		work  float64
	}
	var rows []row
	for i, c := range cands {
		work, _, _, _ := ps.Executor.Work(c, day)
		knobs := "default"
		if len(c.Knobs) > 0 {
			knobs = strings.Join(c.Knobs, ",")
		}
		rows = append(rows, row{idx: i, knobs: knobs, rough: native.RoughCost(c), work: work})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].work < rows[j].work })
	fmt.Fprintf(out, "%-4s %-28s %12s %12s\n", "#", "knobs", "roughCost", "trueWork")
	for _, r := range rows {
		fmt.Fprintf(out, "%-4d %-28s %12.0f %12.0f\n", r.idx, r.knobs, r.rough, r.work)
	}

	fmt.Fprintf(out, "\ndefault plan:\n%s", cands[0])
	d := exec.Decompose(cands[0].Root)
	fmt.Fprintf(out, "stage decomposition: %d stages\n", len(d.Stages))
	for _, s := range d.Stages {
		ops := make([]string, len(s.Nodes))
		for i, n := range s.Nodes {
			ops[i] = n.Op.String()
		}
		fmt.Fprintf(out, "  stage %d: %s\n", s.ID, strings.Join(ops, " -> "))
	}
	return nil
}
