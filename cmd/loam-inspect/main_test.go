package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"loam"
)

func TestInspectAllSections(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-tables", "10"}, &out, &errw); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{
		"== catalog", "== statistics view vs ground truth",
		"== workload templates", "== query", "stage decomposition",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestInspectSingleSection(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-tables", "8", "-section", "stats"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "ground truth") {
		t.Fatal("stats section missing")
	}
	if strings.Contains(s, "== catalog") {
		t.Fatal("unrequested section present")
	}
}

func TestInspectBadTemplate(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-section", "query", "-template", "99"}, &out, &errw); err == nil {
		t.Fatal("out-of-range template accepted")
	}
}

// TestInspectMetricsSubcommand runs the opt-in metrics demo via the
// positional subcommand and checks both the deterministic snapshot and the
// reporting-only wall timings appear.
func TestInspectMetricsSubcommand(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-tables", "8", "metrics"}, &out, &errw); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{
		"== metrics (deterministic snapshot) ==",
		"counter serve.optimize.total 5",
		"counter train.runs 1",
		"== wall timings",
		"serve.optimize.latency",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "== catalog") {
		t.Fatal("metrics demo should not drag other sections along")
	}
}

// TestInspectAllOmitsMetrics pins the opt-in contract: -section all must not
// run the (training) metrics demo.
func TestInspectAllOmitsMetrics(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-tables", "10"}, &out, &errw); err != nil {
		t.Fatalf("run: %v", err)
	}
	if strings.Contains(out.String(), "== metrics") {
		t.Fatal("metrics demo ran under -section all")
	}
}

func TestInspectRejectsUnknownSubcommand(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"bogus"}, &out, &errw); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
}

// fsckStore deploys a tiny durable deployment and returns its store dir.
func fsckStore(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	sim := loam.NewSimulation(7, loam.DefaultSimulationConfig())
	cfg := loam.DefaultProjectConfig("fsck")
	cfg.Archetype.NumTables = 8
	cfg.Workload.NumTemplates = 4
	cfg.Workload.QueriesPerDayMean = 4
	ps := sim.AddProject(cfg)
	ps.RunDays(0, 5)
	dcfg := loam.DefaultDeployConfig()
	dcfg.TrainDays = 4
	dcfg.TestDays = 1
	dcfg.Predictor.Epochs = 2
	dcfg.DomainPlans = 4
	dep, err := ps.Deploy(dcfg, loam.WithDurableStore(dir))
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	for i, q := range ps.Gen.Day(5) {
		if i == 3 {
			break
		}
		c, err := dep.Optimize(q)
		if err != nil {
			t.Fatalf("optimize: %v", err)
		}
		dep.ExecuteChoice(c)
	}
	return dir
}

// TestInspectFsckCleanStore pins the fsck subcommand's happy path: a freshly
// checkpointed store reports ok, and two invocations print byte-identical
// reports.
func TestInspectFsckCleanStore(t *testing.T) {
	dir := fsckStore(t)
	check := func() string {
		var out, errw bytes.Buffer
		if err := run([]string{"fsck", dir}, &out, &errw); err != nil {
			t.Fatalf("fsck: %v\n%s", err, out.String())
		}
		return out.String()
	}
	first := check()
	for _, want := range []string{
		"fsck ok",
		"manifest seq=1 version=1 parent=0 next=2 event=deploy",
		"snapshot ",
		"journal segments=1",
	} {
		if !strings.Contains(first, want) {
			t.Fatalf("report missing %q:\n%s", want, first)
		}
	}
	if again := check(); again != first {
		t.Fatalf("fsck reports differ across runs:\n--- 1 ---\n%s\n--- 2 ---\n%s", first, again)
	}
}

// TestInspectFsckCorruptStore pins the exit contract: a bit-flipped snapshot
// renders a CORRUPT report and makes run return an error (exit 1 in main).
func TestInspectFsckCorruptStore(t *testing.T) {
	dir := fsckStore(t)
	ents, err := os.ReadDir(filepath.Join(dir, "models"))
	if err != nil || len(ents) == 0 {
		t.Fatalf("models dir: %v", err)
	}
	path := filepath.Join(dir, "models", ents[0].Name())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	if err := run([]string{"fsck", dir}, &out, &errw); err == nil {
		t.Fatalf("corrupt store passed fsck:\n%s", out.String())
	}
	s := out.String()
	if !strings.Contains(s, "fsck CORRUPT") || !strings.Contains(s, "checksum") {
		t.Fatalf("corrupt report incomplete:\n%s", s)
	}
}

func TestInspectFsckMissingDir(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"fsck", filepath.Join(t.TempDir(), "nope")}, &out, &errw); err == nil {
		t.Fatal("missing dir accepted")
	}
}

func TestInspectFsckUsage(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"fsck"}, &out, &errw); err == nil {
		t.Fatal("fsck without a dir accepted")
	}
}
