package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestInspectAllSections(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-tables", "10"}, &out, &errw); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{
		"== catalog", "== statistics view vs ground truth",
		"== workload templates", "== query", "stage decomposition",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestInspectSingleSection(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-tables", "8", "-section", "stats"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "ground truth") {
		t.Fatal("stats section missing")
	}
	if strings.Contains(s, "== catalog") {
		t.Fatal("unrequested section present")
	}
}

func TestInspectBadTemplate(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-section", "query", "-template", "99"}, &out, &errw); err == nil {
		t.Fatal("out-of-range template accepted")
	}
}

// TestInspectMetricsSubcommand runs the opt-in metrics demo via the
// positional subcommand and checks both the deterministic snapshot and the
// reporting-only wall timings appear.
func TestInspectMetricsSubcommand(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-tables", "8", "metrics"}, &out, &errw); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{
		"== metrics (deterministic snapshot) ==",
		"counter serve.optimize.total 5",
		"counter train.runs 1",
		"== wall timings",
		"serve.optimize.latency",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "== catalog") {
		t.Fatal("metrics demo should not drag other sections along")
	}
}

// TestInspectAllOmitsMetrics pins the opt-in contract: -section all must not
// run the (training) metrics demo.
func TestInspectAllOmitsMetrics(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-tables", "10"}, &out, &errw); err != nil {
		t.Fatalf("run: %v", err)
	}
	if strings.Contains(out.String(), "== metrics") {
		t.Fatal("metrics demo ran under -section all")
	}
}

func TestInspectRejectsUnknownSubcommand(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"bogus"}, &out, &errw); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
}
