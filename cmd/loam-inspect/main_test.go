package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestInspectAllSections(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-tables", "10"}, &out, &errw); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{
		"== catalog", "== statistics view vs ground truth",
		"== workload templates", "== query", "stage decomposition",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestInspectSingleSection(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-tables", "8", "-section", "stats"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "ground truth") {
		t.Fatal("stats section missing")
	}
	if strings.Contains(s, "== catalog") {
		t.Fatal("unrequested section present")
	}
}

func TestInspectBadTemplate(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-section", "query", "-template", "99"}, &out, &errw); err == nil {
		t.Fatal("out-of-range template accepted")
	}
}
