GO ?= go

.PHONY: build test race bench bench-smoke bench-fleet bench-fleet-smoke bench-go lint lint-fix-hints lint-report chaos chaos-recover verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race run exercises the concurrent serving layer (see serve_test.go and
# DESIGN.md's concurrency model); it is part of verification, not optional.
race:
	$(GO) test -race ./...

# bench measures the serving fast path (PredictCost ns/op + allocs/op,
# cached vs uncached SelectPlan q/s, OptimizeBatch q/s at parallelism 1/2/4)
# and writes the machine-readable BENCH_serve.json.
bench: build
	$(GO) run ./cmd/loam-bench -run perf -quiet -benchout BENCH_serve.json

# bench-smoke is the tiny-scale CI variant of bench. It also runs the perf
# trend gate: results are compared against the committed BENCH_baseline.json
# (the pre-quantization f64 serving numbers), with thresholds scaled by the
# two machines' calibration ratio, and a >10% regression in warm-cache q/s or
# PredictCost ns/op — or any broken identical-choices bit — fails the build.
# The baseline is recorded at tiny scale, so only the tiny variant is gated.
bench-smoke: build
	$(GO) run ./cmd/loam-bench -run perf -tiny -quiet -benchout BENCH_serve.json -baseline BENCH_baseline.json

# bench-fleet runs the multi-tenant fleet-serving experiment (10k synthetic
# tenants + 2 real deployments, zipfian traffic, tenant-skew spike) and writes
# the machine-readable BENCH_fleet.json.
bench-fleet: build
	$(GO) run ./cmd/loam-bench -run fleet -quiet -fleetout BENCH_fleet.json

# bench-fleet-smoke is the tiny-scale CI variant of bench-fleet (100 tenants).
bench-fleet-smoke: build
	$(GO) run ./cmd/loam-bench -run fleet -tiny -quiet -fleetout BENCH_fleet.json

# bench-go runs the go-test benchmark suite once through.
bench-go:
	$(GO) test -bench=. -benchtime=1x ./...

# lint runs stock go vet plus loam-vet, the repo's own analyzer suite
# (internal/analysis): determinism, lockdiscipline, nansafety, errwrap,
# guarddiscipline, inferencepurity, iodiscipline, and the typed contracts
# allocdiscipline, lockorder and ctxflow. See DESIGN.md "Static analysis &
# code contracts".
#
# Budget: the typed suite (go/types load of every package + call graph + all
# ten analyzers) completes in ~2s wall on the full repo, ~4s including the
# `go run` compile of loam-vet itself. If a change pushes the suite past ~10s,
# treat it as a regression in the analyzer, not a cost of doing business.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/loam-vet ./...

# lint-fix-hints prints a suggested rewrite under each finding.
lint-fix-hints:
	$(GO) run ./cmd/loam-vet -hints ./...

# lint-report writes the machine-readable report (active findings, suppressed
# findings with their allowlist Reasons, stale allowlist entries); CI uploads
# it as an artifact. Exit status matches `lint`: findings or stale entries
# fail.
lint-report:
	$(GO) run ./cmd/loam-vet -json ./... > LINT_report.json

# chaos re-runs the resilience suite — fault injection, circuit-breaker
# transitions, quarantine, forced outages, and the model-lifecycle fault
# scenario (a retrain failing mid-promote must leave the incumbent serving)
# — under the race detector. It overlaps `race` on purpose: a focused, fast
# loop for iterating on the guarded serving layer (see DESIGN.md
# "Degraded-mode serving contract" and "Model lifecycle contract").
chaos:
	$(GO) test -race -count=1 -run 'Guard|Breaker|Quarantine|Fault|Outage|Inject|Lifecycle|SwapScorer' ./...

# chaos-recover is the durability twin of chaos: the kill-point crash sweep,
# the atomic-write primitive, the journal's torn-tail repair, snapshot
# integrity, fsck, and warm restore — under the race detector (see DESIGN.md
# "Durability & recovery contract").
chaos-recover:
	$(GO) test -race -count=1 -run 'Recover|Durable|Journal|Fsck|Atomic|KillPoint|TornTail|Integrity|Restore|Grants' ./...

verify: build lint test race chaos chaos-recover
