GO ?= go

.PHONY: build test race bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race run exercises the concurrent serving layer (see serve_test.go and
# DESIGN.md's concurrency model); it is part of verification, not optional.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

verify: build test race
