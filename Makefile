GO ?= go

.PHONY: build test race bench bench-smoke bench-go lint lint-fix-hints chaos verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race run exercises the concurrent serving layer (see serve_test.go and
# DESIGN.md's concurrency model); it is part of verification, not optional.
race:
	$(GO) test -race ./...

# bench measures the serving fast path (PredictCost ns/op + allocs/op,
# cached vs uncached SelectPlan q/s, OptimizeBatch q/s at parallelism 1/2/4)
# and writes the machine-readable BENCH_serve.json.
bench: build
	$(GO) run ./cmd/loam-bench -run perf -quiet -benchout BENCH_serve.json

# bench-smoke is the tiny-scale CI variant of bench.
bench-smoke: build
	$(GO) run ./cmd/loam-bench -run perf -tiny -quiet -benchout BENCH_serve.json

# bench-go runs the go-test benchmark suite once through.
bench-go:
	$(GO) test -bench=. -benchtime=1x ./...

# lint runs stock go vet plus loam-vet, the repo's own analyzer suite
# (internal/analysis): determinism, lockdiscipline, nansafety, errwrap,
# guarddiscipline. See DESIGN.md "Static analysis & code contracts".
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/loam-vet ./...

# lint-fix-hints prints a suggested rewrite under each finding.
lint-fix-hints:
	$(GO) run ./cmd/loam-vet -hints ./...

# chaos re-runs the resilience suite — fault injection, circuit-breaker
# transitions, quarantine, forced outages, and the model-lifecycle fault
# scenario (a retrain failing mid-promote must leave the incumbent serving)
# — under the race detector. It overlaps `race` on purpose: a focused, fast
# loop for iterating on the guarded serving layer (see DESIGN.md
# "Degraded-mode serving contract" and "Model lifecycle contract").
chaos:
	$(GO) test -race -count=1 -run 'Guard|Breaker|Quarantine|Fault|Outage|Inject|Lifecycle|SwapScorer' ./...

verify: build lint test race chaos
