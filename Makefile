GO ?= go

.PHONY: build test race bench lint lint-fix-hints verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race run exercises the concurrent serving layer (see serve_test.go and
# DESIGN.md's concurrency model); it is part of verification, not optional.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# lint runs stock go vet plus loam-vet, the repo's own analyzer suite
# (internal/analysis): determinism, lockdiscipline, nansafety, errwrap.
# See DESIGN.md "Static analysis & code contracts".
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/loam-vet ./...

# lint-fix-hints prints a suggested rewrite under each finding.
lint-fix-hints:
	$(GO) run ./cmd/loam-vet -hints ./...

verify: build lint test race
