package loam

import (
	"context"
	"fmt"
	"sync"

	"loam/internal/durable"
	"loam/internal/fleet"
	"loam/internal/guard"
	"loam/internal/query"
)

// This file is the root package's fleet-serving surface: the registry veneer
// that makes fleet.Registry the single serving entry point for many
// deployments at once, the adapter that plugs a *Deployment in as a fleet
// backend, and the deployment-side seams the registry governs (the shed
// serving path and the budgeted plan-cache capacity). The mechanics —
// sharding, admission token buckets, global cache budget — live in
// internal/fleet.

// Fleet configuration and reporting types, re-exported so application code
// never imports internal packages.
type (
	// FleetConfig tunes a fleet registry: shard count, global plan-cache
	// budget, admission token buckets. The zero value takes defaults.
	FleetConfig = fleet.Config
	// FleetAdmissionConfig tunes the per-tenant admission token buckets.
	FleetAdmissionConfig = fleet.AdmissionConfig
	// FleetBackend is the serving engine interface a registry routes to.
	// Deployments adapt to it via FleetRegistry.Register; synthetic tenants
	// (fleet-scale experiments) implement it directly.
	FleetBackend = fleet.Backend
	// FleetTenantStats is a point-in-time view of one tenant's admission and
	// cache state.
	FleetTenantStats = fleet.TenantStats
	// FleetBudgetStatus is a point-in-time view of the global cache budget.
	FleetBudgetStatus = fleet.BudgetStatus
)

// DefaultFleetConfig returns serving-scale registry settings.
func DefaultFleetConfig() FleetConfig { return fleet.DefaultConfig() }

// Fleet registry sentinels, re-exported for errors.Is.
var (
	// ErrUnknownTenant reports routing to a project with no registered
	// backend.
	ErrUnknownTenant = fleet.ErrUnknownTenant
	// ErrDuplicateTenant reports registering a project twice.
	ErrDuplicateTenant = fleet.ErrDuplicateTenant
	// ErrTenantThrottled is the admission gate's shed cause. It appears —
	// wrapped under ErrLoadShed — in a shed Choice's FallbackCause, never as
	// a Route error: shedding is degradation, not failure.
	ErrTenantThrottled = fleet.ErrTenantThrottled
	// ErrLoadShed classifies a Choice served degraded because admission
	// control declined the learned path (the guard's load-shed rung).
	ErrLoadShed = guard.ErrLoadShed
)

// FleetRegistry is the multi-tenant serving layer over a set of deployments:
// per-project backends hash-sharded for lock-free routing, per-tenant
// admission control clocked on serve calls, and a global plan-cache budget
// divided across tenants by observed traffic. Route is the single public
// serving entry point for a fleet — it runs the admission gate and then the
// deployment's full guarded ladder, or the native-fallback shed path for an
// over-budget tenant. See DESIGN.md "Fleet serving contract".
type FleetRegistry struct {
	reg *fleet.Registry
	// store persists the grant table when EnableDurableGrants armed it; nil
	// keeps budget state in memory only. saved holds the table a previous
	// process left behind, read at enable time, until RestoreGrants applies
	// it. persistMu serializes saves: control-plane calls serialize inside
	// fleet.Registry, but the post-call save runs outside that lock.
	persistMu sync.Mutex
	store     *durable.FleetStore
	saved     *durable.GrantTable
}

// NewFleetRegistry builds a standalone fleet registry. Wire cfg.Metrics to
// aggregate fleet.* telemetry with other components; prefer
// Simulation.NewFleet inside a simulation, which does that for you.
func NewFleetRegistry(cfg FleetConfig) *FleetRegistry {
	return &FleetRegistry{reg: fleet.New(cfg)}
}

// NewFleet builds a fleet registry wired to the simulation's telemetry
// registry (unless cfg.Metrics overrides it), so fleet.* counters land in the
// same snapshot as cluster and serving metrics.
func (s *Simulation) NewFleet(cfg FleetConfig) *FleetRegistry {
	if cfg.Metrics == nil {
		cfg.Metrics = s.tel
	}
	return NewFleetRegistry(cfg)
}

// Register adds a deployment as project's serving backend. The registry takes
// over the deployment's plan-cache capacity: the initial grant (and every
// later Rebalance) resizes the cache in place, and lifecycle promotes size
// their fresh caches from the live grant.
func (f *FleetRegistry) Register(project string, d *Deployment) error {
	if d == nil {
		return fmt.Errorf("register %q: %w", project, fleet.ErrNilBackend)
	}
	if err := f.reg.Register(project, &fleetBackend{d: d}); err != nil {
		return err
	}
	f.saveGrants()
	return nil
}

// RegisterBackend adds a custom FleetBackend (e.g. a fleet.SyntheticTenant)
// as project's serving engine. Route on such a tenant returns a nil *Choice —
// read its native value via Registry().Route instead.
func (f *FleetRegistry) RegisterBackend(project string, b FleetBackend) error {
	if err := f.reg.Register(project, b); err != nil {
		return err
	}
	f.saveGrants()
	return nil
}

// Deregister removes project's backend, returning its cache grant to the
// pool. Reports whether the project was registered.
func (f *FleetRegistry) Deregister(project string) bool {
	ok := f.reg.Deregister(project)
	if ok {
		f.saveGrants()
	}
	return ok
}

// Route serves one query for project through the admission gate: an admitted
// query runs the deployment's full guarded ladder (learned path first), an
// over-budget one is degraded to the guard's native-fallback rung with
// ErrLoadShed/ErrTenantThrottled in the Choice's FallbackCause. The error is
// non-nil only for unknown tenants, caller cancellation, or total ladder
// exhaustion — a shed still serves.
func (f *FleetRegistry) Route(ctx context.Context, project string, q *query.Query) (*Choice, error) {
	out, err := f.reg.Route(ctx, project, q)
	c, _ := out.(*Choice)
	return c, err
}

// Tick advances the fleet's logical admission clock: every tenant's bucket
// refills by RefillPerTick. Call it between traffic waves.
func (f *FleetRegistry) Tick() { f.reg.Tick() }

// Rebalance re-divides the global plan-cache budget across tenants in
// proportion to traffic since the last call — hot projects earn cache, cold
// ones shrink (deterministically; see internal/fleet).
func (f *FleetRegistry) Rebalance() {
	f.reg.Rebalance()
	f.saveGrants()
}

// Budget reports the current global cache budget status.
func (f *FleetRegistry) Budget() FleetBudgetStatus { return f.reg.Budget() }

// Stats returns project's admission and cache stats; ok is false for unknown
// tenants.
func (f *FleetRegistry) Stats(project string) (FleetTenantStats, bool) { return f.reg.Stats(project) }

// Tenants returns the registered project names, sorted.
func (f *FleetRegistry) Tenants() []string { return f.reg.Tenants() }

// Registry exposes the underlying fleet.Registry for callers that mix
// deployments with custom backends (fleet-scale experiments).
func (f *FleetRegistry) Registry() *fleet.Registry { return f.reg }

// fleetBackend adapts a *Deployment to the fleet.Backend interface.
type fleetBackend struct {
	d *Deployment
}

// OptimizeCtx serves one admitted query on the deployment's full ladder.
func (b *fleetBackend) OptimizeCtx(ctx context.Context, q *query.Query) (any, error) {
	c, err := b.d.OptimizeCtx(ctx, q)
	if c == nil {
		// Return a true nil interface, not a typed-nil *Choice.
		return nil, err
	}
	return c, err
}

// ShedCtx serves one load-shed query from the fallback ladder.
func (b *fleetBackend) ShedCtx(ctx context.Context, q *query.Query, cause error) (any, error) {
	c, err := b.d.optimizeShed(ctx, q, cause)
	if c == nil {
		return nil, err
	}
	return c, err
}

// CacheLen reports the deployment's current plan-cache entry count.
func (b *fleetBackend) CacheLen() int { return b.d.pred.Load().PlanCacheLen() }

// SetCacheCapacity applies a fleet budget grant to the deployment.
func (b *fleetBackend) SetCacheCapacity(n int) { b.d.setGovernedCache(n) }

// optimizeShed serves one query the admission gate declined: candidates are
// still generated (the fallback ladder needs them), but the guard goes
// straight to the native-fallback rung — the learned path's cost (scoring,
// cache traffic, breaker accounting) is withheld, and the Choice reports
// ErrLoadShed wrapping cause in FallbackCause. It feeds the same serving
// telemetry as OptimizeCtx, so fleet-wide serve counters stay comparable.
func (d *Deployment) optimizeShed(ctx context.Context, q *query.Query, cause error) (*Choice, error) {
	if err := ctx.Err(); err != nil {
		d.obs.optimizeCancels.Inc()
		return nil, err
	}
	d.obs.optimizeTotal.Inc()
	span := d.obs.optimizeLatency.Start()
	defer span.Stop()

	cands := d.ProjectSim.Explorer(q.Day).Candidates(q)
	d.obs.candidates.Observe(float64(len(cands)))
	res, err := d.grd.ServeShed(guard.Request{
		ID:    q.ID,
		Day:   q.Day,
		Query: q,
		Cands: cands,
	}, cause)
	if err != nil {
		d.obs.optimizeErrors.Inc()
		return nil, fmt.Errorf("optimize %s: %w", d.ProjectSim.Config.Name, err)
	}
	idx := -1
	for i := range cands {
		if cands[i] == res.Chosen {
			idx = i
			break
		}
	}
	return &Choice{
		Query:         q,
		Candidates:    cands,
		Chosen:        res.Chosen,
		ChosenIdx:     idx,
		Origin:        res.Origin,
		FallbackCause: res.FallbackCause,
	}, nil
}

// setGovernedCache applies a fleet cache grant: the live predictor's cache is
// resized in place (shrinks evict the LRU tail, survivors keep their
// embeddings), and the grant is remembered so a lifecycle promote sizes the
// new model's fresh cache from it. Called by the registry with its
// control-plane locks held; the predictor read is atomic, so a concurrent
// promote either sees the grant (promoteCacheCapacity) or gets resized here.
func (d *Deployment) setGovernedCache(n int) {
	d.governedCap.Store(int64(n))
	d.pred.Load().SetPlanCacheCapacity(n)
}

// promoteCacheCapacity is the plan-cache capacity a newly promoted model's
// fresh cache gets: the live fleet grant once a registry governs this
// deployment, the deploy-time WithPlanCache capacity before that.
func (d *Deployment) promoteCacheCapacity() int {
	if g := d.governedCap.Load(); g >= 0 {
		return int(g)
	}
	return d.planCacheCap
}
