package loam

import (
	"fmt"
	"strings"
)

// FleetError is one project's failure inside DeployAllCtx: which fleet index
// failed, the project's name, and the underlying cause.
type FleetError struct {
	Index   int
	Project string
	Err     error
}

// Error formats the failure with its fleet position.
func (e *FleetError) Error() string {
	return fmt.Sprintf("fleet[%d] %s: %v", e.Index, e.Project, e.Err)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *FleetError) Unwrap() error { return e.Err }

// FleetErrors is DeployAllCtx's typed error surface, mirroring BatchErrors:
// one entry per failed project, in result order. Callers can tell WHICH
// projects failed and why without parsing message text:
//
//	var fe loam.FleetErrors
//	if errors.As(err, &fe) {
//	    for _, e := range fe { retrain(e.Index, e.Project) }
//	}
//
// errors.Is sees through both levels (FleetErrors → FleetError → cause), so
// errors.Is(err, context.Canceled) and errors.Is(err, ErrNoTrainingData)
// work on the aggregate.
type FleetErrors []*FleetError

// Error summarizes the failures: the count plus the first few entries.
func (es FleetErrors) Error() string {
	const show = 3
	parts := make([]string, 0, show+1)
	for i, e := range es {
		if i == show {
			parts = append(parts, fmt.Sprintf("... and %d more", len(es)-show))
			break
		}
		parts = append(parts, e.Error())
	}
	return fmt.Sprintf("deploy fleet: %d projects failed: %s", len(es), strings.Join(parts, "; "))
}

// Unwrap exposes every per-project failure to errors.Is / errors.As.
func (es FleetErrors) Unwrap() []error {
	out := make([]error, len(es))
	for i, e := range es {
		out[i] = e
	}
	return out
}

// fleetError assembles the typed error surface from per-project results, or
// nil when every project deployed. Result errors already carry the
// "deploy <name>:" prefix from ProjectSim.Deploy; FleetError adds position,
// not another copy of that prefix.
func fleetError(results []FleetResult) error {
	var es FleetErrors
	for i, r := range results {
		if r.Err != nil {
			es = append(es, &FleetError{Index: i, Project: r.Project, Err: r.Err})
		}
	}
	if len(es) == 0 {
		return nil
	}
	return es
}
