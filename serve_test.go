package loam

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"loam/internal/predictor"
	"loam/internal/query"
)

// serveDeployment builds a small trained deployment plus a slice of fresh
// test-day queries for the concurrency tests.
func serveDeployment(t *testing.T, seed uint64, nQueries int) (*Deployment, []*query.Query) {
	t.Helper()
	_, ps := tinyProject(t, seed)
	ps.RunDays(0, 6)
	dcfg := DefaultDeployConfig()
	dcfg.TrainDays = 5
	dcfg.TestDays = 1
	dcfg.Predictor.Epochs = 2
	dcfg.DomainPlans = 8
	dep, err := ps.Deploy(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	var qs []*query.Query
	for day := 6; len(qs) < nQueries; day++ {
		qs = append(qs, ps.Gen.Day(day)...)
	}
	return dep, qs[:nQueries]
}

// TestConcurrentOptimizeMatchesSequential steers the same queries once
// sequentially and once from many goroutines and requires identical plan
// choices and estimates — the serving layer's determinism contract. Run with
// -race to also check the shared substrate (cluster, statistics views,
// predictor weights) for data races.
func TestConcurrentOptimizeMatchesSequential(t *testing.T) {
	dep, qs := serveDeployment(t, 31, 12)

	seq := make([]*Choice, len(qs))
	for i, q := range qs {
		c, err := dep.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		seq[i] = c
	}

	conc := make([]*Choice, len(qs))
	errs := make([]error, len(qs))
	var wg sync.WaitGroup
	for i := range qs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conc[i], errs[i] = dep.Optimize(qs[i])
		}(i)
	}
	wg.Wait()

	for i := range qs {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if conc[i].ChosenIdx != seq[i].ChosenIdx {
			t.Fatalf("query %d: concurrent chose %d, sequential %d", i, conc[i].ChosenIdx, seq[i].ChosenIdx)
		}
		for j := range seq[i].Estimates {
			if conc[i].Estimates[j] != seq[i].Estimates[j] {
				t.Fatalf("query %d estimate %d differs under concurrency", i, j)
			}
		}
	}
}

// TestConcurrentExecuteChoice optimizes and executes from multiple goroutines
// against one live cluster. Execution order (and hence noise draws) is
// scheduler-dependent, but the run must be race-free, panic-free, and log
// exactly one history record per query.
func TestConcurrentExecuteChoice(t *testing.T) {
	dep, qs := serveDeployment(t, 32, 16)
	before := dep.ProjectSim.Repo.Len()

	var wg sync.WaitGroup
	for _, q := range qs {
		wg.Add(1)
		go func(q *query.Query) {
			defer wg.Done()
			choice, err := dep.Optimize(q)
			if err != nil {
				t.Errorf("optimize %s: %v", q.ID, err)
				return
			}
			if rec := dep.ExecuteChoice(choice); rec.CPUCost <= 0 {
				t.Errorf("query %s: non-positive executed cost", q.ID)
			}
		}(q)
	}
	wg.Wait()

	if got := dep.ProjectSim.Repo.Len(); got != before+len(qs) {
		t.Fatalf("repo grew by %d, want %d", got-before, len(qs))
	}
}

// TestOptimizeBatchMatchesSequential requires OptimizeBatch to return the
// same choices in the same order at every parallelism level.
func TestOptimizeBatchMatchesSequential(t *testing.T) {
	dep, qs := serveDeployment(t, 33, 10)
	seq, err := dep.OptimizeBatch(context.Background(), qs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(qs) {
		t.Fatalf("batch returned %d choices for %d queries", len(seq), len(qs))
	}
	for _, parallelism := range []int{2, 4, 16} {
		par, err := dep.OptimizeBatch(context.Background(), qs, parallelism)
		if err != nil {
			t.Fatalf("parallelism=%d: %v", parallelism, err)
		}
		for i := range qs {
			if par[i] == nil || par[i].Query != qs[i] {
				t.Fatalf("parallelism=%d: choice %d not in query order", parallelism, i)
			}
			if par[i].ChosenIdx != seq[i].ChosenIdx {
				t.Fatalf("parallelism=%d: query %d chose %d, sequential %d",
					parallelism, i, par[i].ChosenIdx, seq[i].ChosenIdx)
			}
			for j := range seq[i].Estimates {
				if par[i].Estimates[j] != seq[i].Estimates[j] {
					t.Fatalf("parallelism=%d: query %d estimate %d differs", parallelism, i, j)
				}
			}
		}
	}
}

// TestOptimizeBatchCanceledBeforeStart feeds an already-canceled context:
// every choice must come back nil, and the error must be a BatchErrors whose
// entries all wrap context.Canceled — on the sequential and parallel paths.
func TestOptimizeBatchCanceledBeforeStart(t *testing.T) {
	dep, qs := serveDeployment(t, 35, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, parallelism := range []int{1, 4} {
		choices, err := dep.OptimizeBatch(ctx, qs, parallelism)
		if err == nil {
			t.Fatalf("parallelism=%d: want error from canceled batch", parallelism)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallelism=%d: errors.Is(err, context.Canceled) = false for %v", parallelism, err)
		}
		var be BatchErrors
		if !errors.As(err, &be) {
			t.Fatalf("parallelism=%d: error is %T, want BatchErrors", parallelism, err)
		}
		if len(be) != len(qs) {
			t.Fatalf("parallelism=%d: %d batch errors, want %d", parallelism, len(be), len(qs))
		}
		for i := range qs {
			if choices[i] != nil {
				t.Fatalf("parallelism=%d: non-nil choice %d for unstarted query", parallelism, i)
			}
			if be[i].Index != i || be[i].Query != qs[i] {
				t.Fatalf("parallelism=%d: entry %d misattributed: index %d query %p", parallelism, i, be[i].Index, be[i].Query)
			}
			if !errors.Is(be[i], context.Canceled) {
				t.Fatalf("parallelism=%d: entry %d does not wrap context.Canceled: %v", parallelism, i, be[i])
			}
		}
	}
}

// countdownCtx cancels itself after a fixed number of Err checks — a
// deterministic way to land a cancellation mid-batch on the sequential path
// (which polls Err, never Done).
type countdownCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *countdownCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestOptimizeBatchCancelMidBatchSequential cancels deterministically after
// the first query: query 0 must succeed, every later query must be abandoned
// with a nil choice and a context.Canceled batch entry.
func TestOptimizeBatchCancelMidBatchSequential(t *testing.T) {
	dep, qs := serveDeployment(t, 36, 5)
	// Checks per query: one at the loop top, two inside OptimizeCtx. after=4
	// lets query 0 through and trips during query 1's entry check.
	ctx := &countdownCtx{Context: context.Background(), after: 4}
	choices, err := dep.OptimizeBatch(ctx, qs, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if choices[0] == nil || choices[0].Chosen == nil {
		t.Fatal("query 0 should have completed before the cancel")
	}
	var be BatchErrors
	if !errors.As(err, &be) {
		t.Fatalf("error is %T, want BatchErrors", err)
	}
	if len(be) != len(qs)-1 {
		t.Fatalf("%d batch errors, want %d", len(be), len(qs)-1)
	}
	for i := 1; i < len(qs); i++ {
		if choices[i] != nil {
			t.Fatalf("choice %d should be nil after cancel", i)
		}
	}
}

// TestOptimizeBatchCancelInFlight cancels concurrently with a parallel batch
// and checks the invariants that must hold wherever the cancel lands: the
// call returns, every nil choice has a matching batch entry, and any error
// reports context.Canceled.
func TestOptimizeBatchCancelInFlight(t *testing.T) {
	dep, qs := serveDeployment(t, 37, 16)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var choices []*Choice
	var err error
	go func() {
		defer close(done)
		choices, err = dep.OptimizeBatch(ctx, qs, 2)
	}()
	cancel()
	<-done
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("unexpected batch error: %v", err)
	}
	failed := map[int]bool{}
	var be BatchErrors
	if err != nil {
		if !errors.As(err, &be) {
			t.Fatalf("error is %T, want BatchErrors", err)
		}
		for _, e := range be {
			failed[e.Index] = true
		}
	}
	for i := range qs {
		if (choices[i] == nil) != failed[i] {
			t.Fatalf("query %d: nil-choice/error mismatch (nil=%v, failed=%v)", i, choices[i] == nil, failed[i])
		}
	}
}

// TestBatchErrorSurface pins the typed error surface itself: attribution,
// formatting, and errors.Is/As traversal through both levels.
func TestBatchErrorSurface(t *testing.T) {
	_, ps := tinyProject(t, 38)
	q0 := ps.Gen.Templates[0].Instantiate(ps.Rng("be"), 0)
	q1 := ps.Gen.Templates[1].Instantiate(ps.Rng("be"), 0)
	qs := []*query.Query{q0, q1}

	if err := batchError(qs, []error{nil, nil}); err != nil {
		t.Fatalf("all-nil batch should yield nil error, got %v", err)
	}

	cause := predictor.ErrNoCandidates
	err := batchError(qs, []error{nil, cause})
	if err == nil {
		t.Fatal("want error")
	}
	if !errors.Is(err, cause) {
		t.Fatalf("errors.Is does not reach the cause: %v", err)
	}
	var be BatchErrors
	if !errors.As(err, &be) {
		t.Fatalf("error is %T, want BatchErrors", err)
	}
	if len(be) != 1 || be[0].Index != 1 || be[0].Query != q1 {
		t.Fatalf("misattributed: %+v", be)
	}
	var one *BatchError
	if !errors.As(err, &one) || one.Index != 1 {
		t.Fatalf("errors.As(*BatchError) failed: %v", err)
	}
	if !strings.Contains(err.Error(), "batch[1]") || !strings.Contains(err.Error(), "1 queries failed") {
		t.Fatalf("unexpected message %q", err.Error())
	}
	if !strings.Contains(one.Error(), q1.ID) {
		t.Fatalf("entry message %q lacks query id %q", one.Error(), q1.ID)
	}
}

// TestConcurrentClusterReads hammers the cluster's read API while a writer
// advances simulated time — the RWMutex contract under -race.
func TestConcurrentClusterReads(t *testing.T) {
	sim, ps := tinyProject(t, 34)
	cl := sim.Cluster
	done := make(chan struct{})
	var wg wg2
	for r := 0; r < 4; r++ {
		wg.go_(func() {
			for {
				select {
				case <-done:
					return
				default:
				}
				_ = cl.ClusterAverage()
				_ = cl.HistoryAverage()
				_ = cl.MachineMetrics(0)
				_ = cl.Now()
			}
		})
	}
	ps.RunDays(0, 2)
	close(done)
	wg.wait()
}

// TestOptimizeBatchCancelLeaksNoGoroutines cancels parallel batches mid-
// flight and checks the goroutine count settles back to its baseline: the
// regression test for worker or watchdog goroutines outliving a canceled
// batch (the guard arms a deadline watchdog per learned scoring call, and
// the batch path spawns a worker pool — all of them must unwind).
func TestOptimizeBatchCancelLeaksNoGoroutines(t *testing.T) {
	dep, qs := serveDeployment(t, 38, 16)
	// Warm-up: one full batch so lazily-started runtime goroutines don't
	// count against the baseline.
	if _, err := dep.OptimizeBatch(context.Background(), qs, 4); err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()

	for round := 0; round < 3; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			_, _ = dep.OptimizeBatch(ctx, qs, 4)
		}()
		cancel()
		<-done
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// wg2 is a tiny WaitGroup wrapper keeping the test bodies readable.
type wg2 struct{ wg sync.WaitGroup }

func (w *wg2) go_(f func()) {
	w.wg.Add(1)
	go func() { defer w.wg.Done(); f() }()
}

func (w *wg2) wait() { w.wg.Wait() }
