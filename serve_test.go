package loam

import (
	"sync"
	"testing"

	"loam/internal/query"
)

// serveDeployment builds a small trained deployment plus a slice of fresh
// test-day queries for the concurrency tests.
func serveDeployment(t *testing.T, seed uint64, nQueries int) (*Deployment, []*query.Query) {
	t.Helper()
	_, ps := tinyProject(t, seed)
	ps.RunDays(0, 6)
	dcfg := DefaultDeployConfig()
	dcfg.TrainDays = 5
	dcfg.TestDays = 1
	dcfg.Predictor.Epochs = 2
	dcfg.DomainPlans = 8
	dep, err := ps.Deploy(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	var qs []*query.Query
	for day := 6; len(qs) < nQueries; day++ {
		qs = append(qs, ps.Gen.Day(day)...)
	}
	return dep, qs[:nQueries]
}

// TestConcurrentOptimizeMatchesSequential steers the same queries once
// sequentially and once from many goroutines and requires identical plan
// choices and estimates — the serving layer's determinism contract. Run with
// -race to also check the shared substrate (cluster, statistics views,
// predictor weights) for data races.
func TestConcurrentOptimizeMatchesSequential(t *testing.T) {
	dep, qs := serveDeployment(t, 31, 12)

	seq := make([]*Choice, len(qs))
	for i, q := range qs {
		c, err := dep.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		seq[i] = c
	}

	conc := make([]*Choice, len(qs))
	errs := make([]error, len(qs))
	var wg sync.WaitGroup
	for i := range qs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conc[i], errs[i] = dep.Optimize(qs[i])
		}(i)
	}
	wg.Wait()

	for i := range qs {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if conc[i].ChosenIdx != seq[i].ChosenIdx {
			t.Fatalf("query %d: concurrent chose %d, sequential %d", i, conc[i].ChosenIdx, seq[i].ChosenIdx)
		}
		for j := range seq[i].Estimates {
			if conc[i].Estimates[j] != seq[i].Estimates[j] {
				t.Fatalf("query %d estimate %d differs under concurrency", i, j)
			}
		}
	}
}

// TestConcurrentExecuteChoice optimizes and executes from multiple goroutines
// against one live cluster. Execution order (and hence noise draws) is
// scheduler-dependent, but the run must be race-free, panic-free, and log
// exactly one history record per query.
func TestConcurrentExecuteChoice(t *testing.T) {
	dep, qs := serveDeployment(t, 32, 16)
	before := dep.ProjectSim.Repo.Len()

	var wg sync.WaitGroup
	for _, q := range qs {
		wg.Add(1)
		go func(q *query.Query) {
			defer wg.Done()
			choice, err := dep.Optimize(q)
			if err != nil {
				t.Errorf("optimize %s: %v", q.ID, err)
				return
			}
			if rec := dep.ExecuteChoice(choice); rec.CPUCost <= 0 {
				t.Errorf("query %s: non-positive executed cost", q.ID)
			}
		}(q)
	}
	wg.Wait()

	if got := dep.ProjectSim.Repo.Len(); got != before+len(qs) {
		t.Fatalf("repo grew by %d, want %d", got-before, len(qs))
	}
}

// TestOptimizeBatchMatchesSequential requires OptimizeBatch to return the
// same choices in the same order at every parallelism level.
func TestOptimizeBatchMatchesSequential(t *testing.T) {
	dep, qs := serveDeployment(t, 33, 10)
	seq, err := dep.OptimizeBatch(qs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(qs) {
		t.Fatalf("batch returned %d choices for %d queries", len(seq), len(qs))
	}
	for _, parallelism := range []int{2, 4, 16} {
		par, err := dep.OptimizeBatch(qs, parallelism)
		if err != nil {
			t.Fatalf("parallelism=%d: %v", parallelism, err)
		}
		for i := range qs {
			if par[i] == nil || par[i].Query != qs[i] {
				t.Fatalf("parallelism=%d: choice %d not in query order", parallelism, i)
			}
			if par[i].ChosenIdx != seq[i].ChosenIdx {
				t.Fatalf("parallelism=%d: query %d chose %d, sequential %d",
					parallelism, i, par[i].ChosenIdx, seq[i].ChosenIdx)
			}
			for j := range seq[i].Estimates {
				if par[i].Estimates[j] != seq[i].Estimates[j] {
					t.Fatalf("parallelism=%d: query %d estimate %d differs", parallelism, i, j)
				}
			}
		}
	}
}

// TestConcurrentClusterReads hammers the cluster's read API while a writer
// advances simulated time — the RWMutex contract under -race.
func TestConcurrentClusterReads(t *testing.T) {
	sim, ps := tinyProject(t, 34)
	cl := sim.Cluster
	done := make(chan struct{})
	var wg wg2
	for r := 0; r < 4; r++ {
		wg.go_(func() {
			for {
				select {
				case <-done:
					return
				default:
				}
				_ = cl.ClusterAverage()
				_ = cl.HistoryAverage()
				_ = cl.MachineMetrics(0)
				_ = cl.Now()
			}
		})
	}
	ps.RunDays(0, 2)
	close(done)
	wg.wait()
}

// wg2 is a tiny WaitGroup wrapper keeping the test bodies readable.
type wg2 struct{ wg sync.WaitGroup }

func (w *wg2) go_(f func()) {
	w.wg.Add(1)
	go func() { defer w.wg.Done(); f() }()
}

func (w *wg2) wait() { w.wg.Wait() }
